#include "ppr/topk.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace meloppr::ppr {
namespace {

TEST(TopK, OrdersByScoreThenId) {
  std::vector<ScoredNode> scores = {
      {5, 0.1}, {3, 0.5}, {9, 0.5}, {1, 0.3}};
  auto top = top_k(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].node, 3u);  // 0.5, lower id first
  EXPECT_EQ(top[1].node, 9u);  // 0.5
  EXPECT_EQ(top[2].node, 1u);  // 0.3
}

TEST(TopK, FewerThanKReturnsAllSorted) {
  std::vector<ScoredNode> scores = {{2, 0.2}, {1, 0.9}};
  auto top = top_k(scores, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 1u);
}

TEST(TopK, EmptyInput) {
  auto top = top_k(std::vector<ScoredNode>{}, 5);
  EXPECT_TRUE(top.empty());
}

TEST(TopK, MapOverloadAgreesWithVector) {
  ScoreMap m{{1, 0.5}, {2, 0.7}, {3, 0.1}};
  auto from_map = top_k(m, 2);
  auto from_vec = top_k(to_scored_nodes(m), 2);
  ASSERT_EQ(from_map.size(), from_vec.size());
  for (std::size_t i = 0; i < from_map.size(); ++i) {
    EXPECT_EQ(from_map[i].node, from_vec[i].node);
  }
}

TEST(TopK, DeterministicUnderPermutation) {
  std::vector<ScoredNode> a = {{4, 0.4}, {2, 0.4}, {7, 0.4}, {1, 0.4}};
  std::vector<ScoredNode> b = {{1, 0.4}, {7, 0.4}, {2, 0.4}, {4, 0.4}};
  auto ta = top_k(a, 2);
  auto tb = top_k(b, 2);
  ASSERT_EQ(ta.size(), 2u);
  EXPECT_EQ(ta[0].node, tb[0].node);
  EXPECT_EQ(ta[1].node, tb[1].node);
  EXPECT_EQ(ta[0].node, 1u);
  EXPECT_EQ(ta[1].node, 2u);
}

TEST(Precision, ExactMatchIsOne) {
  std::vector<ScoredNode> truth = {{1, 0.9}, {2, 0.8}, {3, 0.7}};
  EXPECT_DOUBLE_EQ(precision_at_k(truth, truth, 3), 1.0);
}

TEST(Precision, DisjointIsZero) {
  std::vector<ScoredNode> truth = {{1, 0.9}, {2, 0.8}};
  std::vector<ScoredNode> approx = {{3, 0.9}, {4, 0.8}};
  EXPECT_DOUBLE_EQ(precision_at_k(truth, approx, 2), 0.0);
}

TEST(Precision, PartialOverlap) {
  std::vector<ScoredNode> truth = {{1, 0.9}, {2, 0.8}, {3, 0.7}, {4, 0.6}};
  std::vector<ScoredNode> approx = {{1, 0.9}, {3, 0.8}, {9, 0.7}, {8, 0.6}};
  EXPECT_DOUBLE_EQ(precision_at_k(truth, approx, 4), 0.5);
}

TEST(Precision, DividesByKNotByListSize) {
  // The paper's definition divides by k even if the approximation returned
  // fewer nodes.
  std::vector<ScoredNode> truth = {{1, 0.9}, {2, 0.8}, {3, 0.7}, {4, 0.6}};
  std::vector<ScoredNode> approx = {{1, 0.9}};
  EXPECT_DOUBLE_EQ(precision_at_k(truth, approx, 4), 0.25);
}

TEST(Precision, ScoresAreIrrelevantOnlyIdentity) {
  std::vector<ScoredNode> truth = {{1, 1.0}, {2, 0.5}};
  std::vector<ScoredNode> approx = {{2, 123.0}, {1, -5.0}};
  EXPECT_DOUBLE_EQ(precision_at_k(truth, approx, 2), 1.0);
}

TEST(Precision, ZeroKThrows) {
  EXPECT_THROW(precision_at_k({}, {}, 0), InvariantViolation);
}

}  // namespace
}  // namespace meloppr::ppr
