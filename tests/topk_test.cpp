#include "ppr/topk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_support.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace meloppr::ppr {
namespace {

TEST(TopK, OrdersByScoreThenId) {
  std::vector<ScoredNode> scores = {
      {5, 0.1}, {3, 0.5}, {9, 0.5}, {1, 0.3}};
  auto top = top_k(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].node, 3u);  // 0.5, lower id first
  EXPECT_EQ(top[1].node, 9u);  // 0.5
  EXPECT_EQ(top[2].node, 1u);  // 0.3
}

TEST(TopK, FewerThanKReturnsAllSorted) {
  std::vector<ScoredNode> scores = {{2, 0.2}, {1, 0.9}};
  auto top = top_k(scores, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 1u);
}

TEST(TopK, EmptyInput) {
  auto top = top_k(std::vector<ScoredNode>{}, 5);
  EXPECT_TRUE(top.empty());
}

TEST(TopK, MapOverloadAgreesWithVector) {
  ScoreMap m{{1, 0.5}, {2, 0.7}, {3, 0.1}};
  auto from_map = top_k(m, 2);
  auto from_vec = top_k(to_scored_nodes(m), 2);
  ASSERT_EQ(from_map.size(), from_vec.size());
  for (std::size_t i = 0; i < from_map.size(); ++i) {
    EXPECT_EQ(from_map[i].node, from_vec[i].node);
  }
}

TEST(TopK, DeterministicUnderPermutation) {
  std::vector<ScoredNode> a = {{4, 0.4}, {2, 0.4}, {7, 0.4}, {1, 0.4}};
  std::vector<ScoredNode> b = {{1, 0.4}, {7, 0.4}, {2, 0.4}, {4, 0.4}};
  auto ta = top_k(a, 2);
  auto tb = top_k(b, 2);
  ASSERT_EQ(ta.size(), 2u);
  EXPECT_EQ(ta[0].node, tb[0].node);
  EXPECT_EQ(ta[1].node, tb[1].node);
  EXPECT_EQ(ta[0].node, 1u);
  EXPECT_EQ(ta[1].node, 2u);
}

// --- randomized property tests (seed via --seed / MELOPPR_TEST_SEED) ---

TEST(TopKProperty, AgreesWithFullSortOnRandomInputs) {
  Rng base(meloppr::test::test_seed());
  const std::size_t rounds = meloppr::test::stress_iters(50);
  for (std::size_t round = 0; round < rounds; ++round) {
    Rng rng = base.fork(round);
    const std::size_t n = 1 + rng.below(400);
    std::vector<ScoredNode> scores;
    scores.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Pinning 30% of scores at 0.5 forces the tie-breaking path.
      scores.push_back({static_cast<graph::NodeId>(rng.below(n)),
                        rng.uniform(0.0, 1.0) < 0.3
                            ? 0.5
                            : rng.uniform(-1.0, 1.0)});
    }
    std::vector<ScoredNode> reference = scores;
    std::sort(reference.begin(), reference.end(),
              [](const ScoredNode& a, const ScoredNode& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.node < b.node;
              });
    const std::size_t k = 1 + rng.below(n + 8);
    const auto got = top_k(scores, k);
    ASSERT_EQ(got.size(), std::min(k, n)) << "seed round " << round;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].node, reference[i].node)
          << "rank " << i << " in round " << round;
      ASSERT_EQ(got[i].score, reference[i].score)
          << "rank " << i << " in round " << round;
    }
  }
}

TEST(TopKProperty, SmallerKIsAPrefixOfLargerK) {
  // Rank stability: top_k(k1) must be exactly the first k1 rows of
  // top_k(k2) for k1 < k2 — the property the bounded-table comparisons
  // (and every precision measurement) lean on.
  Rng base(meloppr::test::test_seed() ^ 0x70b);
  const std::size_t rounds = meloppr::test::stress_iters(30);
  for (std::size_t round = 0; round < rounds; ++round) {
    Rng rng = base.fork(round);
    const std::size_t n = 2 + rng.below(300);
    std::vector<ScoredNode> scores;
    for (std::size_t i = 0; i < n; ++i) {
      scores.push_back({static_cast<graph::NodeId>(i),
                        rng.chance(0.25) ? 0.25 : rng.uniform(0.0, 1.0)});
    }
    const std::size_t k2 = 1 + rng.below(n);
    const std::size_t k1 = 1 + rng.below(k2);
    const auto big = top_k(scores, k2);
    const auto small = top_k(scores, k1);
    ASSERT_EQ(small.size(), std::min(k1, n));
    for (std::size_t i = 0; i < small.size(); ++i) {
      ASSERT_EQ(small[i].node, big[i].node) << "round " << round;
      ASSERT_EQ(small[i].score, big[i].score) << "round " << round;
    }
  }
}

TEST(Precision, ExactMatchIsOne) {
  std::vector<ScoredNode> truth = {{1, 0.9}, {2, 0.8}, {3, 0.7}};
  EXPECT_DOUBLE_EQ(precision_at_k(truth, truth, 3), 1.0);
}

TEST(Precision, DisjointIsZero) {
  std::vector<ScoredNode> truth = {{1, 0.9}, {2, 0.8}};
  std::vector<ScoredNode> approx = {{3, 0.9}, {4, 0.8}};
  EXPECT_DOUBLE_EQ(precision_at_k(truth, approx, 2), 0.0);
}

TEST(Precision, PartialOverlap) {
  std::vector<ScoredNode> truth = {{1, 0.9}, {2, 0.8}, {3, 0.7}, {4, 0.6}};
  std::vector<ScoredNode> approx = {{1, 0.9}, {3, 0.8}, {9, 0.7}, {8, 0.6}};
  EXPECT_DOUBLE_EQ(precision_at_k(truth, approx, 4), 0.5);
}

TEST(Precision, DividesByKNotByListSize) {
  // The paper's definition divides by k even if the approximation returned
  // fewer nodes.
  std::vector<ScoredNode> truth = {{1, 0.9}, {2, 0.8}, {3, 0.7}, {4, 0.6}};
  std::vector<ScoredNode> approx = {{1, 0.9}};
  EXPECT_DOUBLE_EQ(precision_at_k(truth, approx, 4), 0.25);
}

TEST(Precision, ScoresAreIrrelevantOnlyIdentity) {
  std::vector<ScoredNode> truth = {{1, 1.0}, {2, 0.5}};
  std::vector<ScoredNode> approx = {{2, 123.0}, {1, -5.0}};
  EXPECT_DOUBLE_EQ(precision_at_k(truth, approx, 2), 1.0);
}

TEST(Precision, ZeroKThrows) {
  EXPECT_THROW(precision_at_k({}, {}, 0), InvariantViolation);
}

}  // namespace
}  // namespace meloppr::ppr

// Custom main: --seed flag + failure reproduction line for the property
// tests above.
int main(int argc, char** argv) {
  return meloppr::test::run_all_tests(argc, argv);
}
