#include "hw/quantizer.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace meloppr::hw {
namespace {

TEST(Quantizer, AlphaApproximationQ10) {
  // Paper setting: q=10 → α_p = round(0.85·1024) = 870.
  Quantizer quant(0.85, 10, 1'000'000);
  EXPECT_EQ(quant.alpha_p(), 870u);
  EXPECT_EQ(quant.q(), 10u);
  EXPECT_NEAR(quant.effective_alpha(), 0.85, 1.0 / 1024.0);
}

TEST(Quantizer, RoundTripIsTight) {
  Quantizer quant(0.85, 10, 1'000'000);
  for (double mass : {1.0, 0.5, 0.123456, 1e-4}) {
    const std::uint32_t fixed = quant.to_fixed(mass);
    EXPECT_NEAR(quant.to_real(fixed), mass, 1.0 / 1e6);
  }
}

TEST(Quantizer, MassBelowResolutionQuantizesToZero) {
  Quantizer quant(0.85, 10, 1000);
  EXPECT_EQ(quant.to_fixed(1e-9), 0u);
  EXPECT_DOUBLE_EQ(quant.to_real(0), 0.0);
}

TEST(Quantizer, MulAlphaMatchesShiftArithmetic) {
  Quantizer quant(0.85, 10, 1'000'000);
  EXPECT_EQ(quant.mul_alpha(1024), (1024ull * 870) >> 10);
  EXPECT_EQ(quant.mul_alpha(0), 0u);
  // α + (1−α) applied to x never exceeds x (truncation only loses mass).
  for (std::uint64_t x : {1000ull, 12345ull, 999999ull}) {
    EXPECT_LE(quant.mul_alpha(x) + quant.mul_one_minus_alpha(x), x);
    EXPECT_GE(quant.mul_alpha(x) + quant.mul_one_minus_alpha(x), x - 2);
  }
}

TEST(Quantizer, DivDegreeTruncates) {
  EXPECT_EQ(Quantizer::div_degree(10, 3), 3u);
  EXPECT_EQ(Quantizer::div_degree(2, 3), 0u);
}

TEST(Quantizer, MaxValueClampsTo31Bits) {
  Quantizer quant(0.85, 10, 1ull << 40);
  EXPECT_EQ(quant.max_value(), 0x7fffffffu);
}

TEST(Quantizer, ParameterValidation) {
  EXPECT_THROW(Quantizer(0.0, 10, 100), std::invalid_argument);
  EXPECT_THROW(Quantizer(1.0, 10, 100), std::invalid_argument);
  EXPECT_THROW(Quantizer(0.85, 0, 100), std::invalid_argument);
  EXPECT_THROW(Quantizer(0.85, 17, 100), std::invalid_argument);
  EXPECT_THROW(Quantizer(0.85, 10, 0), std::invalid_argument);
}

TEST(Quantizer, ToFixedRejectsOutOfRangeMass) {
  Quantizer quant(0.85, 10, 1000);
  EXPECT_THROW((void)quant.to_fixed(-0.1), InvariantViolation);
  EXPECT_THROW((void)quant.to_fixed(1.5), InvariantViolation);
  EXPECT_EQ(quant.to_fixed(1.0), 1000u);
}

TEST(Quantizer, FromGraphStatsPolicies) {
  // avg degree 4, max degree 100, reference 1000 nodes.
  const Quantizer avg = Quantizer::from_graph_stats(
      0.85, 10, DChoice::kAverageDegree, 4.0, 100, 1000);
  const Quantizer half = Quantizer::from_graph_stats(
      0.85, 10, DChoice::kHalfMaxDegree, 4.0, 100, 1000);
  const Quantizer full = Quantizer::from_graph_stats(
      0.85, 10, DChoice::kMaxDegree, 4.0, 100, 1000);
  EXPECT_EQ(avg.max_value(), 4000u);
  EXPECT_EQ(half.max_value(), 50000u);
  EXPECT_EQ(full.max_value(), 100000u);
  // Larger d → finer resolution.
  EXPECT_LT(avg.max_value(), half.max_value());
  EXPECT_LT(half.max_value(), full.max_value());
}

TEST(Quantizer, DChoiceNames) {
  EXPECT_EQ(to_string(DChoice::kAverageDegree), "d=avg_degree");
  EXPECT_EQ(to_string(DChoice::kHalfMaxDegree), "d=max_degree/2");
  EXPECT_EQ(to_string(DChoice::kMaxDegree), "d=max_degree");
}

}  // namespace
}  // namespace meloppr::hw
