#include "hw/resource_model.hpp"

#include <gtest/gtest.h>

#include "core/memory_model.hpp"
#include "util/assert.hpp"

namespace meloppr::hw {
namespace {

TEST(MemoryModel, PaperBramFormula) {
  // BRAM|Bytes = 4·(2V + 2E + 2V + V) — Sec. VI-B, verbatim.
  EXPECT_EQ(core::fpga_bram_bytes(10, 20), 4u * (20 + 40 + 20 + 10));
  EXPECT_EQ(core::fpga_bram_bytes(0, 0), 0u);
}

TEST(MemoryModel, CpuBallBytesScalesWithBall) {
  EXPECT_GT(core::cpu_ball_bytes(100, 400), core::cpu_ball_bytes(10, 40));
}

TEST(ResourceModel, DefaultsMatchPaperTableI) {
  // Table I: LUT 0.9/3.1/8.9/21.8/70.6 %, BRAM 4.8/9.9/19.2/36.1/72.8 %
  // for P = 1/2/4/8/16. The structural model should land within a couple of
  // percentage points at every P.
  ResourceModel model;
  const struct {
    unsigned p;
    double lut_pct;
    double bram_pct;
  } expected[] = {
      {1, 0.9, 4.8}, {2, 3.1, 9.9}, {4, 8.9, 19.2},
      {8, 21.8, 36.1}, {16, 70.6, 72.8},
  };
  for (const auto& row : expected) {
    const ResourceUsage usage = model.estimate(row.p);
    EXPECT_NEAR(usage.lut_fraction * 100.0, row.lut_pct, 2.5)
        << "P=" << row.p;
    EXPECT_NEAR(usage.bram_fraction * 100.0, row.bram_pct, 2.5)
        << "P=" << row.p;
    EXPECT_TRUE(usage.fits) << "P=" << row.p;
  }
}

TEST(ResourceModel, DspStaysNegligible) {
  // Table I note: DSP usage under 0.1% because division is LUT logic.
  ResourceModel model;
  for (unsigned p : {1u, 16u}) {
    EXPECT_LT(model.estimate(p).dsp_fraction, 0.001);
  }
}

TEST(ResourceModel, LutGrowthIsSuperlinearBramLinear) {
  ResourceModel model;
  const auto u1 = model.estimate(1);
  const auto u4 = model.estimate(4);
  const auto u16 = model.estimate(16);
  // LUTs: more than ×4 from P=4 to P=16 (crossbar quadratic term).
  EXPECT_GT(static_cast<double>(u16.luts), 4.0 * static_cast<double>(u4.luts));
  // BRAM: close to linear.
  const double bram_ratio = static_cast<double>(u16.bram36_blocks) /
                            static_cast<double>(u1.bram36_blocks);
  EXPECT_GT(bram_ratio, 10.0);
  EXPECT_LT(bram_ratio, 16.5);
}

TEST(ResourceModel, PeBramBlocksFromFormula) {
  ResourceModel model;
  const auto& c = model.coefficients();
  const std::size_t bytes =
      core::fpga_bram_bytes(c.pe_ball_nodes, c.pe_ball_edges);
  const std::size_t expected = (bytes + 4607) / 4608;  // 36 Kb blocks
  EXPECT_EQ(model.pe_bram_blocks(), expected);
}

TEST(ResourceModel, MaxParallelismIsBramBound) {
  ResourceModel model;
  const unsigned max_p = model.max_parallelism();
  EXPECT_GE(max_p, 16u);   // the paper's P=16 must fit
  EXPECT_LT(max_p, 64u);   // but not indefinitely
  EXPECT_TRUE(model.estimate(max_p).fits);
  EXPECT_FALSE(model.estimate(max_p + 1).fits);
}

TEST(ResourceModel, OverflowingDesignDoesNotFit) {
  ResourceCoefficients huge;
  huge.per_pe_luts = 200'000;
  ResourceModel model(DeviceSpec{}, huge);
  EXPECT_FALSE(model.estimate(2).fits);
}

TEST(ResourceModel, RejectsZeroParallelism) {
  ResourceModel model;
  EXPECT_THROW((void)model.estimate(0), InvariantViolation);
}

TEST(DeviceSpec, Kc705Constants) {
  DeviceSpec spec;
  EXPECT_EQ(spec.luts, 203'800u);
  EXPECT_EQ(spec.bram36_blocks, 445u);
  EXPECT_NE(spec.name.find("KC705"), std::string::npos);
}

}  // namespace
}  // namespace meloppr::hw
