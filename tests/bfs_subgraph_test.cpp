// BFS ball extraction + Subgraph invariants, including the exactness
// preconditions MeLoPPR relies on (DESIGN.md invariant 2).
#include "graph/bfs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/paper_graphs.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace meloppr::graph {
namespace {

TEST(ExtractBall, PathGraphDepths) {
  Graph g = fixtures::path(10);
  Subgraph ball = extract_ball(g, 5, 2);
  EXPECT_EQ(ball.num_nodes(), 5u);  // 3,4,5,6,7
  EXPECT_EQ(ball.root_global(), 5u);
  EXPECT_EQ(ball.depth(0), 0u);
  EXPECT_EQ(ball.radius(), 2u);
  EXPECT_NO_THROW(ball.validate());
  // Depth-2 frontier: global nodes 3 and 7.
  EXPECT_EQ(ball.frontier_count(), 2u);
}

TEST(ExtractBall, RadiusZeroIsJustTheSeed) {
  Graph g = fixtures::star(5);
  Subgraph ball = extract_ball(g, 1, 0);
  EXPECT_EQ(ball.num_nodes(), 1u);
  EXPECT_EQ(ball.num_edges(), 0u);
  EXPECT_EQ(ball.global_degree(0), 1u);  // global degree preserved
}

TEST(ExtractBall, StarFromCenterCoversAll) {
  Graph g = fixtures::star(8);
  Subgraph ball = extract_ball(g, 0, 1);
  EXPECT_EQ(ball.num_nodes(), 8u);
  EXPECT_EQ(ball.num_edges(), 7u);
}

TEST(ExtractBall, RejectsBadSeeds) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_THROW(extract_ball(g, 99, 2), std::invalid_argument);
  EXPECT_THROW(extract_ball(g, 3, 2), std::invalid_argument);  // isolated
}

TEST(ExtractBall, InteriorNodesKeepFullAdjacency) {
  Rng rng(7);
  Graph g = barabasi_albert(500, 2, 3, rng);
  Subgraph ball = extract_ball(g, 17, 3);
  for (NodeId local = 0; local < ball.num_nodes(); ++local) {
    if (ball.depth(local) < ball.radius()) {
      EXPECT_EQ(ball.local_degree(local), ball.global_degree(local))
          << "interior local " << local;
    } else {
      EXPECT_LE(ball.local_degree(local), ball.global_degree(local));
    }
  }
}

TEST(ExtractBall, MembershipMatchesBfsOracle) {
  Rng rng(8);
  Graph g = erdos_renyi(300, 900, rng);
  const NodeId seed = 42;
  for (unsigned radius : {0u, 1u, 2u, 3u}) {
    if (g.degree(seed) == 0) break;
    Subgraph ball = extract_ball(g, seed, radius);
    std::vector<NodeId> oracle = bfs_nodes(g, seed, radius);
    std::set<NodeId> oracle_set(oracle.begin(), oracle.end());
    ASSERT_EQ(ball.num_nodes(), oracle_set.size()) << "radius " << radius;
    for (NodeId local = 0; local < ball.num_nodes(); ++local) {
      EXPECT_TRUE(oracle_set.count(ball.to_global(local)) != 0);
    }
  }
}

TEST(ExtractBall, DepthMatchesBoundedDistance) {
  Rng rng(9);
  Graph g = barabasi_albert(400, 1, 2, rng);
  const NodeId seed = 11;
  Subgraph ball = extract_ball(g, seed, 4);
  for (NodeId local = 0; local < ball.num_nodes(); ++local) {
    const int dist = bounded_distance(g, seed, ball.to_global(local), 10);
    EXPECT_EQ(dist, static_cast<int>(ball.depth(local)));
  }
}

TEST(ExtractBall, EdgesAreInducedEdges) {
  Rng rng(10);
  Graph g = erdos_renyi(200, 600, rng);
  Subgraph ball = extract_ball(g, 5, 2);
  for (NodeId lu = 0; lu < ball.num_nodes(); ++lu) {
    const NodeId gu = ball.to_global(lu);
    for (NodeId lw : ball.neighbors(lu)) {
      EXPECT_TRUE(g.has_edge(gu, ball.to_global(lw)));
    }
  }
}

TEST(ExtractBall, StatsReportVisitedWork) {
  Graph g = fixtures::complete(6);
  BfsStats stats;
  Subgraph ball = extract_ball(g, 0, 1, &stats);
  EXPECT_EQ(stats.nodes_visited, 6u);
  EXPECT_EQ(stats.arcs_scanned, 5u);  // only the seed expands at radius 1
}

TEST(Subgraph, ToLocalRoundTripAndMisses) {
  Graph g = fixtures::path(10);
  Subgraph ball = extract_ball(g, 5, 2);
  for (NodeId local = 0; local < ball.num_nodes(); ++local) {
    EXPECT_EQ(ball.to_local(ball.to_global(local)), local);
  }
  EXPECT_EQ(ball.to_local(0), kInvalidNode);  // node 0 is outside radius 2
  EXPECT_FALSE(ball.contains(9));
  EXPECT_TRUE(ball.contains(4));
}

TEST(Subgraph, BytesGrowWithBallSize) {
  Graph g = fixtures::complete(20);
  Subgraph small = extract_ball(g, 0, 0);
  Subgraph large = extract_ball(g, 0, 1);
  EXPECT_LT(small.bytes(), large.bytes());
}

TEST(Subgraph, SummaryContainsRootAndSize) {
  Graph g = fixtures::cycle(8);
  Subgraph ball = extract_ball(g, 3, 2);
  const std::string s = ball.summary();
  EXPECT_NE(s.find("root=3"), std::string::npos);
  EXPECT_NE(s.find("|V|=5"), std::string::npos);
}

TEST(BoundedDistance, ReportsUnreachable) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  Graph g = b.build();
  EXPECT_EQ(bounded_distance(g, 0, 1, 5), 1);
  EXPECT_EQ(bounded_distance(g, 0, 3, 5), -1);
  EXPECT_EQ(bounded_distance(g, 0, 0, 5), 0);
}

TEST(BoundedDistance, RespectsRadiusCap) {
  Graph g = fixtures::path(10);
  EXPECT_EQ(bounded_distance(g, 0, 4, 3), -1);
  EXPECT_EQ(bounded_distance(g, 0, 4, 4), 4);
}

/// Ball-growth sanity on paper-like graphs: the depth-3 ball must be much
/// smaller than the depth-6 ball — the memory gap MeLoPPR exploits.
class BallGrowth : public ::testing::TestWithParam<PaperGraphId> {};

TEST_P(BallGrowth, HalfDepthBallIsMuchSmaller) {
  Rng rng(13);
  Graph g = make_paper_graph(GetParam(), rng, 1.0);
  std::size_t shrink_wins = 0;
  const std::size_t trials = 5;
  for (std::size_t i = 0; i < trials; ++i) {
    const NodeId seed = random_seed_node(g, rng);
    Subgraph b3 = extract_ball(g, seed, 3);
    Subgraph b6 = extract_ball(g, seed, 6);
    EXPECT_LE(b3.num_nodes(), b6.num_nodes());
    if (b3.bytes() * 2 <= b6.bytes()) ++shrink_wins;
  }
  // At least most seeds should show a substantial gap on these graphs.
  EXPECT_GE(shrink_wins, trials - 1);
}

INSTANTIATE_TEST_SUITE_P(
    SmallGraphs, BallGrowth,
    ::testing::ValuesIn(small_paper_graphs()),
    [](const ::testing::TestParamInfo<PaperGraphId>& info) {
      return spec_for(info.param).label;
    });

}  // namespace
}  // namespace meloppr::graph
