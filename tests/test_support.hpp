// Shared plumbing for the randomized / property / stress suites.
//
// Reproducibility contract: every randomized test derives its RNG from
// test_seed(), which resolves (in priority order) the `--seed N` /
// `--seed=N` flag of the test binary, the MELOPPR_TEST_SEED environment
// variable, and a fixed default — so CI and local runs are deterministic
// by default, and any failure replays locally with one copy-pasted flag
// (run_all_tests() prints the reproduction line when a suite fails).
//
// stress_iters() lets heavyweight loops shrink under instrumentation:
// the ThreadSanitizer CI job sets MELOPPR_STRESS_ITERS to cap iteration
// counts (TSan costs ~5-15x in time and ~5x in memory), while uncapped
// runs keep the full counts.
//
// A test binary opts in by defining its own main (the linker then skips
// gtest_main's):
//
//   int main(int argc, char** argv) {
//     return meloppr::test::run_all_tests(argc, argv);
//   }
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "util/env.hpp"

namespace meloppr::test {

inline std::uint64_t& seed_slot() {
  static std::uint64_t seed = static_cast<std::uint64_t>(
      env_int("MELOPPR_TEST_SEED", 0x5eed));
  return seed;
}

/// Base seed for every randomized test in the binary.
inline std::uint64_t test_seed() { return seed_slot(); }

/// Caps a stress-loop iteration count via MELOPPR_STRESS_ITERS (unset or
/// non-positive → the suite's full default).
inline std::size_t stress_iters(std::size_t dflt) {
  const std::int64_t cap = env_int("MELOPPR_STRESS_ITERS", 0);
  if (cap <= 0) return dflt;
  return std::min(dflt, static_cast<std::size_t>(cap));
}

/// InitGoogleTest + `--seed` parsing + RUN_ALL_TESTS, printing the
/// reproduction line when anything failed.
inline int run_all_tests(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed_slot() = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed_slot() = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  const int rc = RUN_ALL_TESTS();
  if (rc != 0) {
    std::cerr << "\nreproduce locally with: " << argv[0]
              << " --seed=" << test_seed()
              << "  (or MELOPPR_TEST_SEED=" << test_seed() << ")\n";
  }
  return rc;
}

}  // namespace meloppr::test
