// Parameterized property sweeps for the hardware layer: numerics invariance
// and cycle-model physics across (P × graph family × localized-aggregation)
// combinations, plus end-to-end hybrid precision across paper graphs.
#include <gtest/gtest.h>

#include <tuple>

#include "core/engine.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/paper_graphs.hpp"
#include "hw/farm.hpp"
#include "hw/host.hpp"
#include "ppr/local_ppr.hpp"
#include "util/rng.hpp"

namespace meloppr::hw {
namespace {

using graph::Graph;

// ---------------------------------------------------------------------------
// Property A: cycle-model physics over P × localized-aggregation.
// ---------------------------------------------------------------------------

using CycleParam = std::tuple<unsigned, bool>;  // (P, localized)

class CycleModelPhysics : public ::testing::TestWithParam<CycleParam> {};

TEST_P(CycleModelPhysics, WorkConservationAndBounds) {
  const auto [p, localized] = GetParam();
  Rng rng(201);
  Graph g = graph::barabasi_albert(1500, 3, 3, rng);
  graph::Subgraph ball = graph::extract_ball(g, 21, 3);

  AcceleratorConfig cfg;
  cfg.parallelism = p;
  cfg.localized_aggregation = localized;
  Accelerator accel(cfg, Quantizer(0.85, 10, 50'000'000));
  AcceleratorRun run = accel.diffuse(ball, 1 << 24, 3);

  // Compute can never beat the perfectly balanced bound.
  const std::uint64_t lower_bound =
      (run.edge_ops + p - 1) / p + 3 * cfg.sync_cycles_per_iteration;
  EXPECT_GE(run.cycles.diffusion, lower_bound);
  // And P=1 cannot have conflicts.
  if (p == 1) {
    EXPECT_EQ(run.cycles.scheduling, 0u);
  }
  // A P-PE machine cannot run faster than edge_ops/P even with zero
  // scheduling, nor slower than fully serial plus all writes.
  EXPECT_LE(run.cycles.diffusion + run.cycles.scheduling,
            2 * run.edge_ops + 3 * cfg.sync_cycles_per_iteration + 3);
}

TEST_P(CycleModelPhysics, NumericsIndependentOfSchedule) {
  const auto [p, localized] = GetParam();
  Rng rng(202);
  Graph g = graph::erdos_renyi(400, 1200, rng);
  graph::NodeId seed = 0;
  while (g.degree(seed) == 0) ++seed;
  graph::Subgraph ball = graph::extract_ball(g, seed, 3);

  AcceleratorConfig base_cfg;
  base_cfg.parallelism = 1;
  const Quantizer quant(0.85, 10, 50'000'000);
  AcceleratorRun reference =
      Accelerator(base_cfg, quant).diffuse(ball, 1 << 22, 3);

  AcceleratorConfig cfg;
  cfg.parallelism = p;
  cfg.localized_aggregation = localized;
  AcceleratorRun run = Accelerator(cfg, quant).diffuse(ball, 1 << 22, 3);
  EXPECT_EQ(run.accumulated, reference.accumulated);
  EXPECT_EQ(run.residual, reference.residual);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CycleModelPhysics,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u, 16u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<CycleParam>& info) {
      return "P" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_localagg" : "_raw");
    });

// ---------------------------------------------------------------------------
// Property B: hybrid pipeline precision on every small paper graph.
// ---------------------------------------------------------------------------

class HybridPrecision
    : public ::testing::TestWithParam<graph::PaperGraphId> {};

TEST_P(HybridPrecision, TracksCpuEngineWithinQuantizationNoise) {
  Rng rng(203);
  Graph g = graph::make_paper_graph(GetParam(), rng, 0.5);
  const std::size_t k = 50;

  core::MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = k;
  cfg.selection = core::Selection::top_count(16);
  core::Engine engine(g, cfg);

  Quantizer quant = Quantizer::from_graph_stats(
      0.85, 10, DChoice::kHalfMaxDegree, g.average_degree(), g.max_degree(),
      g.num_nodes());
  AcceleratorConfig acfg;
  acfg.parallelism = 16;

  double prec_sum = 0.0;
  const int trials = 3;
  for (int i = 0; i < trials; ++i) {
    const graph::NodeId seed = graph::random_seed_node(g, rng);
    // CPU engine with the SAME selection — isolates quantization effects
    // from the selection policy.
    core::CpuBackend cpu(0.85);
    core::ExactAggregator exact;
    core::QueryResult ref = engine.query(seed, cpu, exact);

    FpgaBackend fpga{Accelerator(acfg, quant)};
    core::TopCKAggregator table(10 * k);
    core::QueryResult got = engine.query(seed, fpga, table);
    prec_sum += ppr::precision_at_k(ref.top, got.top, k);
    EXPECT_EQ(fpga.saturated_runs(), 0u);
  }
  EXPECT_GE(prec_sum / trials, 0.9) << graph::spec_for(GetParam()).name;
}

INSTANTIATE_TEST_SUITE_P(
    SmallGraphs, HybridPrecision,
    ::testing::ValuesIn(graph::small_paper_graphs()),
    [](const ::testing::TestParamInfo<graph::PaperGraphId>& info) {
      return graph::spec_for(info.param).label;
    });

// ---------------------------------------------------------------------------
// Property C: farm makespan obeys list-scheduling bounds for any D.
// ---------------------------------------------------------------------------

class FarmBounds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FarmBounds, MakespanWithinGreedyGuarantee) {
  const std::size_t devices = GetParam();
  Rng rng(204);
  Graph g = graph::barabasi_albert(1200, 2, 3, rng);
  AcceleratorConfig cfg;
  cfg.parallelism = 4;
  FpgaFarm farm(devices, cfg, Quantizer(0.85, 10, 50'000'000));

  double longest_job = 0.0;
  for (int i = 0; i < 12; ++i) {
    const graph::NodeId seed = graph::random_seed_node(g, rng);
    graph::Subgraph ball = graph::extract_ball(g, seed, 3);
    core::BackendResult r = farm.run(ball, 1.0, 3);
    longest_job =
        std::max(longest_job, r.compute_seconds + r.transfer_seconds);
  }
  const double serial = farm.serial_seconds();
  const double makespan = farm.makespan_seconds();
  const double d = static_cast<double>(devices);
  // Classic greedy list-scheduling sandwich:
  //   max(serial/D, longest job) ≤ makespan ≤ serial/D + longest job.
  EXPECT_GE(makespan + 1e-12, std::max(serial / d, longest_job));
  EXPECT_LE(makespan, serial / d + longest_job + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, FarmBounds,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace meloppr::hw
