// Connected components + structural analysis tests.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace meloppr::graph {
namespace {

Graph two_triangles_and_isolated() {
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  // node 6 isolated
  return b.build();
}

TEST(Components, CountsAndLabels) {
  Graph g = two_triangles_and_isolated();
  ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.count, 3u);
  EXPECT_EQ(info.label[0], info.label[1]);
  EXPECT_EQ(info.label[1], info.label[2]);
  EXPECT_EQ(info.label[3], info.label[5]);
  EXPECT_NE(info.label[0], info.label[3]);
  EXPECT_NE(info.label[6], info.label[0]);
  EXPECT_TRUE(info.same_component(0, 2));
  EXPECT_FALSE(info.same_component(2, 3));
}

TEST(Components, SizesSumToNodeCount) {
  Graph g = two_triangles_and_isolated();
  ComponentInfo info = connected_components(g);
  std::size_t total = 0;
  for (std::size_t s : info.size) total += s;
  EXPECT_EQ(total, g.num_nodes());
  EXPECT_EQ(info.largest(), 3u);
}

TEST(Components, LabelsAssignedInFirstAppearanceOrder) {
  Graph g = two_triangles_and_isolated();
  ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.label[0], 0u);
  EXPECT_EQ(info.label[3], 1u);
  EXPECT_EQ(info.label[6], 2u);
}

TEST(Components, ConnectedGraphIsOneComponent) {
  Graph g = fixtures::cycle(50);
  ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.count, 1u);
  EXPECT_EQ(info.largest(), 50u);
  EXPECT_EQ(info.largest_id(), 0u);
}

TEST(Components, LargestComponentNodes) {
  GraphBuilder b(10);
  b.add_edge(0, 1);          // pair
  for (NodeId v = 2; v < 9; ++v) b.add_edge(v, v + 1);  // 8-node path
  Graph g = b.build();
  const auto nodes = largest_component_nodes(g);
  ASSERT_EQ(nodes.size(), 8u);
  EXPECT_EQ(nodes.front(), 2u);
  EXPECT_EQ(nodes.back(), 9u);
}

TEST(Analysis, DegreeStatsOnStar) {
  Graph g = fixtures::star(11);  // center degree 10, leaves degree 1
  DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 10u);
  EXPECT_NEAR(stats.mean, 20.0 / 11.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.p50, 1.0);
  EXPECT_GT(stats.skew(), 5.0);
}

TEST(Analysis, ClusteringExtremes) {
  Rng rng(3);
  // Complete graph: clustering 1. Star: clustering 0 (leaves deg 1 skipped,
  // center has no connected neighbor pairs).
  EXPECT_DOUBLE_EQ(
      sampled_clustering_coefficient(fixtures::complete(8), 50, rng), 1.0);
  EXPECT_DOUBLE_EQ(
      sampled_clustering_coefficient(fixtures::star(8), 50, rng), 0.0);
}

TEST(Analysis, CommunityGraphClustersMoreThanBa) {
  Rng rng(4);
  Graph community = community_graph(2000, 100, 5.0, 1.0, rng);
  Graph ba = barabasi_albert(2000, 3, 3, rng);
  Rng eval_rng(5);
  const double c_comm =
      sampled_clustering_coefficient(community, 300, eval_rng);
  const double c_ba = sampled_clustering_coefficient(ba, 300, eval_rng);
  EXPECT_GT(c_comm, 2.0 * c_ba);
}

TEST(Analysis, BallSizeGrowsWithRadius) {
  Rng rng(6);
  Graph g = barabasi_albert(3000, 2, 2, rng);
  Rng eval_rng(7);
  const double b2 = mean_ball_size(g, 2, 10, eval_rng);
  const double b4 = mean_ball_size(g, 4, 10, eval_rng);
  EXPECT_GT(b4, b2);
  EXPECT_GT(ball_growth_factor(g, 2, 10, eval_rng), 1.5);
}

TEST(Analysis, SummaryMentionsKeyFields) {
  Rng rng(8);
  Graph g = fixtures::complete(10);
  const std::string s = structural_summary(g, rng);
  EXPECT_NE(s.find("components=1"), std::string::npos);
  EXPECT_NE(s.find("clustering="), std::string::npos);
}

}  // namespace
}  // namespace meloppr::graph
