// Accelerator simulator tests: integer numerics track the float kernel,
// cycle accounting behaves physically (work conservation, parallel speedup,
// scheduling overhead emerges from conflicts).
#include "hw/accelerator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "ppr/diffusion.hpp"
#include "util/rng.hpp"

namespace meloppr::hw {
namespace {

using graph::extract_ball;
using graph::Graph;
using graph::Subgraph;

Quantizer test_quantizer(std::uint64_t max_value = 50'000'000) {
  return Quantizer(0.85, 10, max_value);
}

AcceleratorConfig config_with_p(unsigned p) {
  AcceleratorConfig cfg;
  cfg.parallelism = p;
  return cfg;
}

TEST(Accelerator, ValidatesConfig) {
  EXPECT_THROW(Accelerator(config_with_p(0), test_quantizer()),
               std::invalid_argument);
  EXPECT_THROW(Accelerator(config_with_p(65), test_quantizer()),
               std::invalid_argument);
  AcceleratorConfig bad_clock;
  bad_clock.clock_hz = 0.0;
  EXPECT_THROW(Accelerator(bad_clock, test_quantizer()),
               std::invalid_argument);
  AcceleratorConfig bad_stream;
  bad_stream.stream_bytes_per_cycle = 0;
  EXPECT_THROW(Accelerator(bad_stream, test_quantizer()),
               std::invalid_argument);
}

TEST(Accelerator, IntegerNumericsTrackFloatKernel) {
  Rng rng(81);
  Graph g = graph::barabasi_albert(400, 2, 2, rng);
  Subgraph ball = extract_ball(g, 7, 3);
  const Quantizer quant = test_quantizer();
  Accelerator accel(config_with_p(4), quant);

  AcceleratorRun run = accel.diffuse(ball, quant.to_fixed(1.0), 3);
  // The device computes with α_eff = α_p/2^q, not α; the tight upper bound
  // is against a float run at α_eff (truncation only loses mass), while
  // closeness holds against the true α too.
  ppr::DiffusionResult ref = ppr::diffuse_from(ball, 0, 1.0, {0.85, 3});
  ppr::DiffusionResult ref_eff =
      ppr::diffuse_from(ball, 0, 1.0, {quant.effective_alpha(), 3});

  for (std::size_t v = 0; v < ball.num_nodes(); ++v) {
    const double got = quant.to_real(run.accumulated[v]);
    EXPECT_LE(got, ref_eff.accumulated[v] + 1e-7) << "local " << v;
    EXPECT_NEAR(got, ref.accumulated[v], 1e-3) << "local " << v;
  }
  EXPECT_FALSE(run.saturated);
}

TEST(Accelerator, ResidualIsAlphaScaled) {
  Graph g = graph::fixtures::star(6);
  Subgraph ball = extract_ball(g, 0, 1);
  const Quantizer quant = test_quantizer();
  Accelerator accel(config_with_p(2), quant);
  AcceleratorRun run = accel.diffuse(ball, quant.to_fixed(1.0), 1);
  ppr::DiffusionResult ref = ppr::diffuse_from(ball, 0, 1.0, {0.85, 1});
  for (std::size_t v = 0; v < ball.num_nodes(); ++v) {
    EXPECT_NEAR(quant.to_real(run.residual[v]), 0.85 * ref.residual[v],
                2e-3);
  }
}

TEST(Accelerator, MassNeverIncreases) {
  Rng rng(82);
  Graph g = graph::erdos_renyi(200, 600, rng);
  graph::NodeId seed = 0;
  while (g.degree(seed) == 0) ++seed;
  Subgraph ball = extract_ball(g, seed, 3);
  const Quantizer quant = test_quantizer();
  Accelerator accel(config_with_p(8), quant);
  AcceleratorRun run = accel.diffuse(ball, quant.to_fixed(1.0), 3);
  const std::uint64_t total = std::accumulate(
      run.accumulated.begin(), run.accumulated.end(), std::uint64_t{0});
  EXPECT_LE(total, static_cast<std::uint64_t>(quant.max_value()));
  // Truncation losses stay small at this Max.
  EXPECT_GT(quant.to_real(total), 0.99);
}

TEST(Accelerator, NumericsAreIndependentOfParallelism) {
  // P changes the schedule, never the arithmetic.
  Rng rng(83);
  Graph g = graph::barabasi_albert(300, 2, 3, rng);
  Subgraph ball = extract_ball(g, 5, 3);
  const Quantizer quant = test_quantizer();
  AcceleratorRun base =
      Accelerator(config_with_p(1), quant).diffuse(ball, 1 << 20, 3);
  for (unsigned p : {2u, 4u, 16u}) {
    AcceleratorRun run =
        Accelerator(config_with_p(p), quant).diffuse(ball, 1 << 20, 3);
    EXPECT_EQ(run.accumulated, base.accumulated) << "P=" << p;
    EXPECT_EQ(run.residual, base.residual) << "P=" << p;
  }
}

TEST(Accelerator, CyclesScaleDownWithParallelism) {
  Rng rng(84);
  Graph g = graph::barabasi_albert(2000, 3, 3, rng);
  Subgraph ball = extract_ball(g, 9, 3);
  const Quantizer quant = test_quantizer();

  std::uint64_t prev_compute = ~std::uint64_t{0};
  for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
    AcceleratorRun run =
        Accelerator(config_with_p(p), quant).diffuse(ball, 1 << 24, 3);
    const std::uint64_t compute =
        run.cycles.diffusion + run.cycles.scheduling;
    EXPECT_LT(compute, prev_compute) << "P=" << p;
    prev_compute = compute;
  }

  // Overall P=1 → P=16 improvement should be substantial (paper: >10×
  // including data movement; compute-only is even larger).
  const std::uint64_t c1 =
      Accelerator(config_with_p(1), quant).diffuse(ball, 1 << 24, 3)
          .cycles.diffusion;
  const AcceleratorRun r16 =
      Accelerator(config_with_p(16), quant).diffuse(ball, 1 << 24, 3);
  const std::uint64_t c16 = r16.cycles.diffusion + r16.cycles.scheduling;
  EXPECT_GT(static_cast<double>(c1) / static_cast<double>(c16), 5.0);
}

TEST(Accelerator, SinglePeHasNoSchedulingOverhead) {
  Rng rng(85);
  Graph g = graph::barabasi_albert(500, 2, 2, rng);
  Subgraph ball = extract_ball(g, 3, 3);
  AcceleratorRun run = Accelerator(config_with_p(1), test_quantizer())
                           .diffuse(ball, 1 << 22, 3);
  EXPECT_EQ(run.cycles.scheduling, 0u);
}

TEST(Accelerator, SchedulingOverheadGrowsWithParallelism) {
  Rng rng(86);
  Graph g = graph::barabasi_albert(2000, 3, 3, rng);
  Subgraph ball = extract_ball(g, 11, 3);
  const Quantizer quant = test_quantizer();
  double prev_fraction = -1.0;
  for (unsigned p : {2u, 8u}) {
    AcceleratorRun run =
        Accelerator(config_with_p(p), quant).diffuse(ball, 1 << 24, 3);
    const double fraction =
        static_cast<double>(run.cycles.scheduling) /
        static_cast<double>(run.cycles.diffusion + run.cycles.scheduling);
    EXPECT_GT(fraction, prev_fraction) << "P=" << p;
    prev_fraction = fraction;
  }
}

TEST(Accelerator, LocalizedAggregationReducesConflicts) {
  // The paper's hardware-aware optimization: without it, hub nodes receive
  // one write per in-edge and the write banks saturate.
  Rng rng(87);
  Graph g = graph::barabasi_albert(2000, 3, 3, rng);
  Subgraph ball = extract_ball(g, 13, 3);
  const Quantizer quant = test_quantizer();

  AcceleratorConfig with = config_with_p(16);
  AcceleratorConfig without = config_with_p(16);
  without.localized_aggregation = false;

  AcceleratorRun run_with =
      Accelerator(with, quant).diffuse(ball, 1 << 24, 3);
  AcceleratorRun run_without =
      Accelerator(without, quant).diffuse(ball, 1 << 24, 3);
  EXPECT_LT(run_with.cycles.scheduling, run_without.cycles.scheduling);
  // Numerics are identical — only the schedule differs.
  EXPECT_EQ(run_with.accumulated, run_without.accumulated);
}

TEST(Accelerator, DataMovementMatchesSubgraphBytes) {
  Graph g = graph::fixtures::complete(10);  // ball: 10 nodes, 45 edges
  Subgraph ball = extract_ball(g, 0, 2);
  AcceleratorConfig cfg = config_with_p(4);
  cfg.stream_bytes_per_cycle = 8;
  AcceleratorRun run =
      Accelerator(cfg, test_quantizer()).diffuse(ball, 1 << 20, 2);
  // Bg = 4·(2·10 + 90) = 440 bytes → 55 cycles at 8 B/cycle.
  EXPECT_EQ(run.cycles.data_movement, 55u);
}

TEST(Accelerator, EdgeOpsMatchCpuKernel) {
  Rng rng(88);
  Graph g = graph::erdos_renyi(150, 400, rng);
  graph::NodeId seed = 0;
  while (g.degree(seed) == 0) ++seed;
  Subgraph ball = extract_ball(g, seed, 3);
  AcceleratorRun run = Accelerator(config_with_p(4), test_quantizer())
                           .diffuse(ball, 1 << 24, 3);
  ppr::DiffusionResult ref = ppr::diffuse_from(ball, 0, 1.0, {0.85, 3});
  // The integer kernel can only skip work when truncation kills mass early,
  // so its edge count is bounded by the float kernel's.
  EXPECT_LE(run.edge_ops, ref.edge_ops);
  EXPECT_GT(run.edge_ops, ref.edge_ops / 2);
}

TEST(Accelerator, SaturationIsFlagged) {
  // A tiny graph with a huge Max: the seed's 2^31-scale mass accumulated
  // onto one neighbor can exceed the 32-bit ceiling when amplified.
  Graph g = graph::fixtures::path(3);
  Subgraph ball = extract_ball(g, 1, 1);
  // Max at the clamp ceiling; u + acc sums can pass 2^32 − 1? Accumulated
  // stays ≤ Max here, so instead verify the no-saturation path is clean.
  AcceleratorRun run = Accelerator(config_with_p(1), test_quantizer())
                           .diffuse(ball, 0x7fffffffu, 1);
  EXPECT_FALSE(run.saturated);
}

TEST(Accelerator, LengthBeyondRadiusRejected) {
  Graph g = graph::fixtures::path(9);
  Subgraph ball = extract_ball(g, 4, 2);
  EXPECT_THROW(Accelerator(config_with_p(1), test_quantizer())
                   .diffuse(ball, 1 << 20, 3),
               InvariantViolation);
}

TEST(Accelerator, SecondsUseConfiguredClock) {
  AcceleratorConfig cfg = config_with_p(1);
  cfg.clock_hz = 100e6;
  Accelerator accel(cfg, test_quantizer());
  EXPECT_DOUBLE_EQ(accel.seconds(100), 1e-6);
}

}  // namespace
}  // namespace meloppr::hw
