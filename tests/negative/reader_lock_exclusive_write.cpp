// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety-analysis:
// writes a field guarded by a SharedMutex while holding only the SHARED
// (reader) side. This is the exact bug class ConcurrentTopCKAggregator's
// fast path flirts with — reading under ReaderLock is fine, mutation
// needs the WriterLock.
#include "util/thread_annotations.hpp"

namespace {

struct Scores {
  meloppr::util::SharedMutex mu;
  double total MELOPPR_GUARDED_BY(mu) = 0.0;
};

double read_ok_write_bad(Scores& s) {
  meloppr::util::ReaderLock lock(s.mu);
  s.total += 1.0;  // error: writing requires exclusive (writer) hold
  return s.total;  // reading under the shared hold alone is legal
}

}  // namespace

int main() {
  Scores s;
  return read_ok_write_bad(s) > 0.0 ? 0 : 1;
}
