// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety-analysis:
// acquires the same (non-recursive) mutex twice on one path — a
// guaranteed self-deadlock at runtime, caught at compile time — and calls
// a MELOPPR_EXCLUDES function while holding the lock it excludes (the
// AggregatorPool::release contract).
#include "util/thread_annotations.hpp"

namespace {

struct Pool {
  meloppr::util::Mutex mu;
  int free_slots MELOPPR_GUARDED_BY(mu) = 0;

  void release() MELOPPR_EXCLUDES(mu) {
    meloppr::util::MutexLock lock(mu);
    ++free_slots;
  }
};

void deadlock(Pool& p) {
  meloppr::util::MutexLock outer(p.mu);
  meloppr::util::MutexLock inner(p.mu);  // error: 'mu' already held
  p.release();  // error: calling excludes-'mu' function while holding it
}

}  // namespace

int main() {
  Pool p;
  deadlock(p);
  return 0;
}
