// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety-analysis:
// writes a MELOPPR_GUARDED_BY field without holding its mutex. The free
// function (not a constructor — ctors are exempt from the analysis) is the
// canonical violation every annotated class in src/ is protected against.
#include "util/thread_annotations.hpp"

namespace {

struct Counter {
  meloppr::util::Mutex mu;
  int value MELOPPR_GUARDED_BY(mu) = 0;
};

int bump_without_lock(Counter& c) {
  ++c.value;      // error: writing variable 'value' requires holding 'mu'
  return c.value; // error: reading it requires the lock too
}

}  // namespace

int main() {
  Counter c;
  return bump_without_lock(c);
}
