// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety-analysis:
// calls a MELOPPR_REQUIRES method without holding the required mutex —
// the "Must hold shard.mu" helper-function contract the sharded cache,
// dynamic graph, and top-c·k aggregator all rely on.
#include "util/thread_annotations.hpp"

namespace {

struct Table {
  meloppr::util::Mutex mu;
  int entries MELOPPR_GUARDED_BY(mu) = 0;

  void insert_locked() MELOPPR_REQUIRES(mu) { ++entries; }
};

void insert_without_lock(Table& t) {
  t.insert_locked();  // error: calling requires holding mutex 'mu'
}

}  // namespace

int main() {
  Table t;
  insert_without_lock(t);
  return 0;
}
