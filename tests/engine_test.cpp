// MeLoPPR engine tests — most importantly the stage-decomposition exactness
// identity (Eq. 8): with all next-stage nodes selected, multi-stage MeLoPPR
// must reproduce single-stage GD_L to floating-point accuracy.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "graph/paper_graphs.hpp"
#include "ppr/local_ppr.hpp"
#include "util/rng.hpp"

namespace meloppr::core {
namespace {

using graph::Graph;

MelopprConfig exact_config(std::vector<unsigned> lengths, std::size_t k) {
  MelopprConfig cfg;
  cfg.alpha = 0.85;
  cfg.stage_lengths = std::move(lengths);
  cfg.k = k;
  cfg.selection = Selection::all();
  return cfg;
}

/// Full score map from the baseline for exact comparisons.
std::map<graph::NodeId, double> baseline_scores(const Graph& g,
                                                graph::NodeId seed,
                                                unsigned length) {
  ppr::LocalPprResult base = ppr::local_ppr(g, seed, {0.85, length, 1});
  std::map<graph::NodeId, double> out;
  for (const auto& sn : base.scores) out.emplace(sn.node, sn.score);
  return out;
}

TEST(Engine, ConfigValidationAtConstruction) {
  Graph g = graph::fixtures::path(4);
  MelopprConfig bad;
  bad.alpha = 1.5;
  EXPECT_THROW(Engine(g, bad), std::invalid_argument);
  MelopprConfig no_stages;
  no_stages.stage_lengths.clear();
  EXPECT_THROW(Engine(g, no_stages), std::invalid_argument);
  MelopprConfig zero_stage;
  zero_stage.stage_lengths = {3, 0};
  EXPECT_THROW(Engine(g, zero_stage), std::invalid_argument);
  MelopprConfig zero_k;
  zero_k.k = 0;
  EXPECT_THROW(Engine(g, zero_k), std::invalid_argument);
}

TEST(Engine, SingleStageEqualsBaselineExactly) {
  Rng rng(61);
  Graph g = graph::barabasi_albert(200, 2, 2, rng);
  Engine engine(g, exact_config({4}, 20));
  QueryResult r = engine.query(7);
  auto base = baseline_scores(g, 7, 4);
  ExactAggregator agg;
  CpuBackend backend(0.85);
  QueryResult r2 = engine.query(7, backend, agg);
  for (const auto& [node, score] : agg.scores()) {
    ASSERT_TRUE(base.count(node) != 0) << "extra node " << node;
    EXPECT_NEAR(score, base.at(node), 1e-12);
  }
  EXPECT_EQ(r.top.size(), r2.top.size());
}

TEST(Engine, TwoStageExactnessIdentity) {
  // DESIGN.md invariant 1 — Eq. 8 is an identity, not an approximation.
  Rng rng(62);
  Graph g = graph::barabasi_albert(300, 2, 3, rng);
  const graph::NodeId seed = 11;
  auto base = baseline_scores(g, seed, 6);

  Engine engine(g, exact_config({3, 3}, 50));
  CpuBackend backend(0.85);
  ExactAggregator agg;
  engine.query(seed, backend, agg);

  ASSERT_FALSE(agg.scores().empty());
  for (const auto& [node, score] : agg.scores()) {
    const double truth = base.count(node) ? base.at(node) : 0.0;
    EXPECT_NEAR(score, truth, 1e-9) << "node " << node;
  }
  // And no baseline mass was missed.
  for (const auto& [node, truth] : base) {
    const auto it = agg.scores().find(node);
    const double got = it == agg.scores().end() ? 0.0 : it->second;
    EXPECT_NEAR(got, truth, 1e-9) << "node " << node;
  }
}

TEST(Engine, AsymmetricSplitsAreAlsoExact) {
  Rng rng(63);
  Graph g = graph::erdos_renyi(150, 450, rng);
  graph::NodeId seed = 0;
  while (g.degree(seed) == 0) ++seed;
  auto base = baseline_scores(g, seed, 5);
  for (const auto& lengths :
       std::vector<std::vector<unsigned>>{{1, 4}, {2, 3}, {4, 1}}) {
    Engine engine(g, exact_config(lengths, 30));
    CpuBackend backend(0.85);
    ExactAggregator agg;
    engine.query(seed, backend, agg);
    for (const auto& [node, truth] : base) {
      const auto it = agg.scores().find(node);
      const double got = it == agg.scores().end() ? 0.0 : it->second;
      EXPECT_NEAR(got, truth, 1e-9)
          << "split {" << lengths[0] << "," << lengths[1] << "} node "
          << node;
    }
  }
}

TEST(Engine, ThreeStageRecursionIsExact) {
  Rng rng(64);
  Graph g = graph::barabasi_albert(200, 2, 2, rng);
  const graph::NodeId seed = 5;
  auto base = baseline_scores(g, seed, 6);
  Engine engine(g, exact_config({2, 2, 2}, 30));
  CpuBackend backend(0.85);
  ExactAggregator agg;
  engine.query(seed, backend, agg);
  for (const auto& [node, truth] : base) {
    const auto it = agg.scores().find(node);
    const double got = it == agg.scores().end() ? 0.0 : it->second;
    EXPECT_NEAR(got, truth, 1e-9) << "node " << node;
  }
}

TEST(Engine, SelectiveModeUnderestimatesButRanksWell) {
  Rng rng(65);
  Graph g = graph::barabasi_albert(500, 2, 2, rng);
  const graph::NodeId seed = 3;
  ppr::LocalPprResult base = ppr::local_ppr(g, seed, {0.85, 6, 20});

  MelopprConfig cfg = exact_config({3, 3}, 20);
  cfg.selection = Selection::top_ratio(0.10);
  Engine engine(g, cfg);
  QueryResult r = engine.query(seed);
  const double prec = ppr::precision_at_k(base.top, r.top, 20);
  EXPECT_GE(prec, 0.5);  // 10% of next-stage nodes already ranks decently
}

TEST(Engine, PrecisionImprovesWithSelectionRatio) {
  Rng rng(66);
  Graph g = graph::barabasi_albert(600, 2, 2, rng);
  double prev_avg = -1.0;
  for (double ratio : {0.01, 0.20, 1.0}) {
    double prec_sum = 0.0;
    for (graph::NodeId seed : {3u, 41u, 99u}) {
      ppr::LocalPprResult base = ppr::local_ppr(g, seed, {0.85, 6, 20});
      MelopprConfig cfg = exact_config({3, 3}, 20);
      cfg.selection =
          ratio >= 1.0 ? Selection::all() : Selection::top_ratio(ratio);
      Engine engine(g, cfg);
      QueryResult r = engine.query(seed);
      prec_sum += ppr::precision_at_k(base.top, r.top, 20);
    }
    EXPECT_GE(prec_sum + 1e-9, prev_avg) << "ratio " << ratio;
    prev_avg = prec_sum;
  }
  // Exact mode must reach precision 1.
  EXPECT_NEAR(prev_avg, 3.0, 1e-9);
}

TEST(Engine, StatsDescribeTheRecursion) {
  Rng rng(67);
  Graph g = graph::barabasi_albert(400, 2, 2, rng);
  MelopprConfig cfg = exact_config({3, 3}, 10);
  cfg.selection = Selection::top_count(5);
  Engine engine(g, cfg);
  QueryResult r = engine.query(9);
  ASSERT_EQ(r.stats.stages.size(), 2u);
  EXPECT_EQ(r.stats.stages[0].balls, 1u);
  EXPECT_EQ(r.stats.stages[0].selected, 5u);
  EXPECT_EQ(r.stats.stages[1].balls, 5u);
  EXPECT_EQ(r.stats.stages[1].selected, 0u);  // last stage never selects
  EXPECT_GT(r.stats.peak_bytes, 0u);
  EXPECT_GT(r.stats.edge_ops(), 0u);
  EXPECT_GT(r.stats.total_seconds, 0.0);
  EXPECT_GE(r.stats.bfs_fraction(), 0.0);
  EXPECT_LE(r.stats.bfs_fraction(), 1.0);
  EXPECT_EQ(r.stats.total_balls(), 6u);
}

TEST(Engine, PeakMemoryIsOneBallAtATime) {
  // The defining memory property: the engine's peak must be far below the
  // sum of all ball footprints it processed.
  Rng rng(68);
  Graph g = graph::barabasi_albert(800, 3, 3, rng);
  MelopprConfig cfg = exact_config({3, 3}, 20);
  cfg.selection = Selection::top_count(20);
  Engine engine(g, cfg);
  QueryResult r = engine.query(17);

  std::size_t sum_of_balls = 0;
  for (const auto& st : r.stats.stages) {
    sum_of_balls += st.total_ball_nodes;  // proxy: nodes ever held
  }
  EXPECT_GT(r.stats.total_balls(), 10u);
  // Peak is bounded by max ball + aggregator, not by the 21-ball total.
  EXPECT_LT(r.stats.peak_bytes,
            sum_of_balls * 50);  // generous constant per node
}

TEST(Engine, MemorySmallerThanBaselineBall) {
  // On locality-rich graphs the depth-3 ball stays inside the community
  // while the depth-6 ball escapes across the whole graph — the regime
  // where the paper reports its largest savings (denser community graphs
  // G4/G5: 9.5×/13.4× average reduction). Note BA-style small-world graphs
  // can invert this for hub seeds; the paper's own Table II minima are
  // below 1×, so no universal claim is made there.
  Rng rng(69);
  Graph g = graph::community_graph(30000, 1500, 4.0, 0.8, rng);
  const graph::NodeId seed = 77;
  ppr::LocalPprResult base = ppr::local_ppr(g, seed, {0.85, 6, 20});
  MelopprConfig cfg = exact_config({3, 3}, 20);
  cfg.selection = Selection::top_ratio(0.05);
  Engine engine(g, cfg);
  QueryResult r = engine.query(seed);
  EXPECT_LT(r.stats.peak_bytes * 3, base.peak_bytes);
}

TEST(Engine, TopCKAggregatorPluggable) {
  Rng rng(70);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  MelopprConfig cfg = exact_config({3, 3}, 10);
  cfg.selection = Selection::top_count(10);
  Engine engine(g, cfg);

  CpuBackend backend(0.85);
  TopCKAggregator table(10 * 10);  // c = 10
  QueryResult r = engine.query(4, backend, table);
  EXPECT_EQ(r.top.size(), 10u);
  EXPECT_LE(table.entries(), 100u);
  EXPECT_EQ(r.stats.aggregator_bytes, table.bytes());
}

TEST(Engine, QueryIsDeterministic) {
  Rng rng(71);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  MelopprConfig cfg = exact_config({3, 3}, 15);
  cfg.selection = Selection::top_ratio(0.05);
  Engine engine(g, cfg);
  QueryResult a = engine.query(8);
  QueryResult b = engine.query(8);
  ASSERT_EQ(a.top.size(), b.top.size());
  for (std::size_t i = 0; i < a.top.size(); ++i) {
    EXPECT_EQ(a.top[i].node, b.top[i].node);
    EXPECT_DOUBLE_EQ(a.top[i].score, b.top[i].score);
  }
}

}  // namespace
}  // namespace meloppr::core
