// FaultPlan parsing and the FaultyBackend decorator (deterministic fault
// injection — the seed-not-anecdote contract of the resilience layer).
#include "util/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace meloppr {
namespace {

using core::BackendResult;
using core::CpuBackend;
using core::FaultyBackend;
using core::RunStatus;
using graph::Graph;

TEST(FaultPlan, DefaultIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.summary(), "fault-plan: none");
}

TEST(FaultPlan, ParsesFullSpec) {
  const FaultPlan plan = FaultPlan::parse(
      "transient=0.05, spike=0.01:0.002, death=40@1, extractor=0.1, seed=7");
  EXPECT_FALSE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.transient_probability, 0.05);
  EXPECT_DOUBLE_EQ(plan.spike_probability, 0.01);
  EXPECT_DOUBLE_EQ(plan.spike_seconds, 0.002);
  EXPECT_TRUE(plan.death_scheduled);
  EXPECT_EQ(plan.death_after_runs, 40u);
  EXPECT_EQ(plan.death_instance, 1u);
  EXPECT_DOUBLE_EQ(plan.extractor_probability, 0.1);
  EXPECT_EQ(plan.seed, 7u);
}

TEST(FaultPlan, DeathInstanceDefaultsToZero) {
  const FaultPlan plan = FaultPlan::parse("death=3");
  EXPECT_TRUE(plan.death_scheduled);
  EXPECT_EQ(plan.death_after_runs, 3u);
  EXPECT_EQ(plan.death_instance, 0u);
}

TEST(FaultPlan, UnknownKeysIgnoredEmptySegmentsTolerated) {
  const FaultPlan plan =
      FaultPlan::parse("transient=0.5,,future_knob=1,  ,seed=3");
  EXPECT_DOUBLE_EQ(plan.transient_probability, 0.5);
  EXPECT_EQ(plan.seed, 3u);
}

TEST(FaultPlan, MalformedSpecsThrow) {
  // static_cast<void>: parse is [[nodiscard]]; here only the throw matters.
  EXPECT_THROW(static_cast<void>(FaultPlan::parse("transient")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(FaultPlan::parse("transient=1.5")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(FaultPlan::parse("transient=-0.1")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(FaultPlan::parse("transient=abc")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(FaultPlan::parse("spike=0.5")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(FaultPlan::parse("spike=0.5:-1")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(FaultPlan::parse("death=x")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(FaultPlan::parse("seed=12z")),
               std::invalid_argument);
}

TEST(FaultPlan, FromEnvRoundTrips) {
  ASSERT_EQ(setenv("MELOPPR_FAULT_PLAN", "transient=0.25,seed=11", 1), 0);
  const FaultPlan plan = FaultPlan::from_env();
  EXPECT_DOUBLE_EQ(plan.transient_probability, 0.25);
  EXPECT_EQ(plan.seed, 11u);
  ASSERT_EQ(unsetenv("MELOPPR_FAULT_PLAN"), 0);
  EXPECT_TRUE(FaultPlan::from_env().empty());
}

TEST(FaultPlan, SummaryNamesActiveInjections) {
  const FaultPlan plan = FaultPlan::parse("transient=0.05,death=40@1");
  const std::string s = plan.summary();
  EXPECT_NE(s.find("transient=0.05"), std::string::npos);
  EXPECT_NE(s.find("death=40@1"), std::string::npos);
  EXPECT_EQ(s.find("spike"), std::string::npos);
}

class FaultyBackendTest : public ::testing::Test {
 protected:
  FaultyBackendTest() : rng_(test::test_seed()) {
    g_ = graph::barabasi_albert(300, 2, 2, rng_);
    ball_ = graph::extract_ball(g_, 3, 2);
  }

  Rng rng_;
  Graph g_;
  graph::Subgraph ball_;
};

TEST_F(FaultyBackendTest, EmptyPlanIsTransparent) {
  CpuBackend cpu(0.85);
  FaultyBackend faulty(cpu, FaultPlan{}, 0);
  const BackendResult want = cpu.run(ball_, 1.0, 2);
  const BackendResult got = faulty.run(ball_, 1.0, 2);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.accumulated.size(), want.accumulated.size());
  for (std::size_t v = 0; v < want.accumulated.size(); ++v) {
    EXPECT_EQ(got.accumulated[v], want.accumulated[v]);
  }
  EXPECT_EQ(faulty.injected_transients(), 0u);
  EXPECT_EQ(faulty.name(), "faulty(cpu)");
}

TEST_F(FaultyBackendTest, TransientDecisionSequenceIsDeterministic) {
  FaultPlan plan = FaultPlan::parse("transient=0.3");
  plan.seed = test::test_seed();
  const auto decision_trace = [&](std::size_t runs) {
    CpuBackend cpu(0.85);
    FaultyBackend faulty(cpu, plan, 2);
    std::vector<bool> trace;
    trace.reserve(runs);
    for (std::size_t i = 0; i < runs; ++i) {
      trace.push_back(faulty.run(ball_, 1.0, 2).ok());
    }
    return trace;
  };
  const std::vector<bool> a = decision_trace(200);
  const std::vector<bool> b = decision_trace(200);
  EXPECT_EQ(a, b);  // same plan + instance → same fault sequence
  // With p=0.3 over 200 runs, both outcomes must occur (the probability of
  // an all-one-way trace is < 1e-30 for any seed-independent bound; for the
  // fixed default seed this is fully deterministic anyway).
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FaultyBackendTest, DistinctInstancesDrawDistinctStreams) {
  FaultPlan plan = FaultPlan::parse("transient=0.5");
  plan.seed = test::test_seed();
  CpuBackend cpu(0.85);
  FaultyBackend a(cpu, plan, 1);
  FaultyBackend b(cpu, plan, 2);
  std::vector<bool> ta;
  std::vector<bool> tb;
  for (std::size_t i = 0; i < 64; ++i) {
    ta.push_back(a.run(ball_, 1.0, 2).ok());
    tb.push_back(b.run(ball_, 1.0, 2).ok());
  }
  EXPECT_NE(ta, tb);  // 2^-64 collision chance, deterministic per seed
}

TEST_F(FaultyBackendTest, TransientRunsNeverTouchTheInnerBackend) {
  // The inner backend must see only the surviving runs, so a fault-free
  // replay of those runs is bit-identical: count inner invocations through
  // a counting wrapper.
  class CountingBackend final : public core::DiffusionBackend {
   public:
    explicit CountingBackend(core::DiffusionBackend& inner) : inner_(&inner) {}
    BackendResult run(const graph::Subgraph& ball, double mass,
                      unsigned length) override {
      ++calls;
      return inner_->run(ball, mass, length);
    }
    [[nodiscard]] std::size_t working_bytes(std::size_t n,
                                            std::size_t e) const override {
      return inner_->working_bytes(n, e);
    }
    [[nodiscard]] std::string name() const override { return inner_->name(); }
    [[nodiscard]] std::unique_ptr<core::DiffusionBackend> clone()
        const override {
      return inner_->clone();
    }
    std::size_t calls = 0;

   private:
    core::DiffusionBackend* inner_;
  };

  FaultPlan plan = FaultPlan::parse("transient=0.4");
  plan.seed = test::test_seed();
  CpuBackend cpu(0.85);
  CountingBackend counting(cpu);
  FaultyBackend faulty(counting, plan, 0);
  std::size_t ok_runs = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    if (faulty.run(ball_, 1.0, 2).ok()) ++ok_runs;
  }
  EXPECT_EQ(counting.calls, ok_runs);
  EXPECT_EQ(faulty.injected_transients(), 100u - ok_runs);
  EXPECT_EQ(faulty.runs(), ok_runs);
}

TEST_F(FaultyBackendTest, StickyDeathAfterScheduledRuns) {
  FaultPlan plan = FaultPlan::parse("death=5@3");
  plan.seed = test::test_seed();
  CpuBackend cpu(0.85);
  FaultyBackend faulty(cpu, plan, 3);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(faulty.run(ball_, 1.0, 2).ok()) << "run " << i;
  }
  EXPECT_FALSE(faulty.device_dead());
  // The 6th run (and every one after) reports sticky death.
  for (std::size_t i = 0; i < 3; ++i) {
    const BackendResult r = faulty.run(ball_, 1.0, 2);
    EXPECT_EQ(r.status, RunStatus::kDeviceDead);
    EXPECT_FALSE(r.error.empty());
  }
  EXPECT_TRUE(faulty.device_dead());
  EXPECT_EQ(faulty.runs(), 5u);
}

TEST_F(FaultyBackendTest, DeathTargetsOnlyItsInstance) {
  FaultPlan plan = FaultPlan::parse("death=0@1");
  CpuBackend cpu(0.85);
  FaultyBackend victim(cpu, plan, 1);
  FaultyBackend bystander(cpu, plan, 0);
  EXPECT_EQ(victim.run(ball_, 1.0, 2).status, RunStatus::kDeviceDead);
  EXPECT_TRUE(bystander.run(ball_, 1.0, 2).ok());
}

TEST_F(FaultyBackendTest, CloneReplaysFromTheStart) {
  FaultPlan plan = FaultPlan::parse("transient=0.5");
  plan.seed = test::test_seed();
  CpuBackend cpu(0.85);
  FaultyBackend faulty(cpu, plan, 0);
  std::vector<bool> original;
  for (std::size_t i = 0; i < 32; ++i) {
    original.push_back(faulty.run(ball_, 1.0, 2).ok());
  }
  const std::unique_ptr<core::DiffusionBackend> clone = faulty.clone();
  std::vector<bool> replay;
  for (std::size_t i = 0; i < 32; ++i) {
    replay.push_back(clone->run(ball_, 1.0, 2).ok());
  }
  EXPECT_EQ(original, replay);  // fresh stream, same decisions
}

TEST(FlakyExtractor, DeterministicAndEventuallyServes) {
  Rng rng(test::test_seed());
  const Graph g = graph::barabasi_albert(300, 2, 2, rng);
  FaultPlan plan = FaultPlan::parse("extractor=0.4");
  plan.seed = test::test_seed();

  const auto trace = [&] {
    const auto extractor = make_flaky_extractor(plan);
    std::vector<bool> threw;
    for (std::size_t i = 0; i < 100; ++i) {
      try {
        const graph::Subgraph ball = extractor(g, 3, 2);
        EXPECT_GT(ball.num_nodes(), 0u);
        threw.push_back(false);
      } catch (const std::runtime_error&) {
        threw.push_back(true);
      }
    }
    return threw;
  };
  const std::vector<bool> a = trace();
  const std::vector<bool> b = trace();
  EXPECT_EQ(a, b);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);

  // Distinct tags draw distinct streams (per-consumer decorrelation).
  const auto tagged = make_flaky_extractor(plan, 1);
  std::vector<bool> tagged_trace;
  for (std::size_t i = 0; i < 100; ++i) {
    try {
      tagged(g, 3, 2);
      tagged_trace.push_back(false);
    } catch (const std::runtime_error&) {
      tagged_trace.push_back(true);
    }
  }
  EXPECT_NE(a, tagged_trace);
}

TEST(FlakyExtractor, CallerErrorsStillPropagateAsInvalidArgument) {
  Rng rng(test::test_seed());
  const Graph g = graph::barabasi_albert(50, 2, 2, rng);
  const auto extractor = make_flaky_extractor(FaultPlan{});
  // A bad seed is a caller error on every attempt — the engine must see
  // invalid_argument (propagate), never a retryable runtime_error.
  EXPECT_THROW(extractor(g, 5'000'000, 2), std::invalid_argument);
}

}  // namespace
}  // namespace meloppr

int main(int argc, char** argv) {
  return meloppr::test::run_all_tests(argc, argv);
}
