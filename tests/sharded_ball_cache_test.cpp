// ShardedBallCache: correctness under concurrency — shard contention,
// eviction under budget pressure, in-flight miss deduplication, pinning —
// plus the splitmix64 key-hash distribution properties.
#include "core/sharded_ball_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace meloppr::core {
namespace {

using graph::Graph;

TEST(BallKeyHash, NoCollisionsAcrossRootsAndLargeRadii) {
  // The old `root << 8 ^ radius` scheme collided as soon as radius ≥ 256
  // spilled into the root bits: (root, 256) aliased (root^1, 0). The
  // splitmix64 finalizer must keep every key distinct (64-bit space; any
  // collision among a few hundred thousand keys would be astronomically
  // unlikely — seeing one means the mixing broke).
  BallKeyHash hash;
  std::unordered_set<std::size_t> seen;
  std::size_t keys = 0;
  for (graph::NodeId root = 0; root < 20'000; ++root) {
    for (unsigned radius : {0u, 1u, 3u, 6u, 255u, 256u, 257u, 512u}) {
      seen.insert(hash(BallKey{root, radius}));
      ++keys;
    }
  }
  EXPECT_EQ(seen.size(), keys);
}

TEST(BallKeyHash, OldSchemeCollisionsAreResolved) {
  // Direct regression pairs for the pre-fix scheme.
  BallKeyHash hash;
  EXPECT_NE(hash(BallKey{7, 256}), hash(BallKey{6, 0}));
  EXPECT_NE(hash(BallKey{0, 256}), hash(BallKey{1, 0}));
  EXPECT_NE(hash(BallKey{100, 512}), hash(BallKey{102, 0}));
}

TEST(BallKeyHash, BitsSpreadAcrossShardsAndBuckets) {
  // Sequential roots with one radius — the serving access pattern — must
  // spread evenly over both the shard selector (high bits) and a power-of-
  // two bucket mask (low bits).
  constexpr std::size_t kBuckets = 16;
  constexpr std::size_t kKeys = 16'384;
  std::vector<std::size_t> shard_load(kBuckets, 0);
  std::vector<std::size_t> bucket_load(kBuckets, 0);
  for (graph::NodeId root = 0; root < kKeys; ++root) {
    const std::uint64_t mixed = splitmix64(BallKey{root, 3}.packed());
    ++shard_load[(mixed >> 40) % kBuckets];
    ++bucket_load[mixed % kBuckets];
  }
  const double expected = static_cast<double>(kKeys) / kBuckets;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    EXPECT_GT(shard_load[b], expected / 2) << "shard " << b;
    EXPECT_LT(shard_load[b], expected * 2) << "shard " << b;
    EXPECT_GT(bucket_load[b], expected / 2) << "bucket " << b;
    EXPECT_LT(bucket_load[b], expected * 2) << "bucket " << b;
  }
}

TEST(ShardedBallCache, HitsOnRepeatedKeys) {
  Graph g = graph::fixtures::cycle(50);
  ShardedBallCache cache(g, 1 << 20, 4);
  const auto first = cache.get(5, 3);
  EXPECT_EQ(cache.misses(), 1u);
  const auto second = cache.get(5, 3);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.get(), second.get());  // same cached object
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), 0u);
}

TEST(ShardedBallCache, DifferentRadiusIsDifferentEntry) {
  Graph g = graph::fixtures::cycle(50);
  ShardedBallCache cache(g, 1 << 20, 4);
  cache.get(5, 2);
  cache.get(5, 3);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(ShardedBallCache, ZeroBudgetRejected) {
  Graph g = graph::fixtures::path(4);
  EXPECT_THROW(ShardedBallCache(g, 0), std::invalid_argument);
}

TEST(ShardedBallCache, EvictionRespectsPerShardBudget) {
  Graph g = graph::fixtures::cycle(400);
  // Probe one ball's footprint (all radius-2 cycle balls are identical).
  std::size_t one_ball;
  {
    ShardedBallCache probe(g, 1 << 20, 1);
    probe.get(0, 2);
    one_ball = probe.bytes();
  }
  ASSERT_GT(one_ball, 0u);
  // One shard, room for exactly 3 balls.
  ShardedBallCache cache(g, 3 * one_ball + one_ball / 2, 1);
  for (graph::NodeId root : {0u, 10u, 20u, 30u, 40u, 50u}) {
    cache.get(root, 2);
  }
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_LE(cache.bytes(), cache.byte_budget());
  // The three most recent survive; the oldest were evicted.
  cache.get(50, 2);
  cache.get(40, 2);
  cache.get(30, 2);
  EXPECT_EQ(cache.hits(), 3u);
  cache.get(0, 2);
  EXPECT_EQ(cache.misses(), 7u);  // 6 cold + this re-miss
}

TEST(ShardedBallCache, OversizedBallServedButNotRetained) {
  Graph g = graph::fixtures::complete(64);
  ShardedBallCache cache(g, 128, 1);  // far below any ball's footprint
  const auto ball = cache.get(0, 1);
  EXPECT_EQ(ball->num_nodes(), 64u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ShardedBallCache, EvictedBallStaysPinnedForReaders) {
  Graph g = graph::fixtures::cycle(400);
  std::size_t one_ball;
  {
    ShardedBallCache probe(g, 1 << 20, 1);
    probe.get(0, 2);
    one_ball = probe.bytes();
  }
  ShardedBallCache cache(g, one_ball + one_ball / 2, 1);  // room for one
  const auto pinned = cache.get(0, 2);
  cache.get(100, 2);  // evicts node 0's ball from the cache
  cache.get(200, 2);
  // The shared_ptr still owns a valid ball even though the cache moved on.
  EXPECT_EQ(pinned->root_global(), 0u);
  EXPECT_GT(pinned->num_nodes(), 0u);
  EXPECT_LE(cache.bytes(), cache.byte_budget());
}

TEST(ShardedBallCache, PrefetchTrafficDoesNotPolluteDemandHitRate) {
  Graph g = graph::fixtures::cycle(100);
  ShardedBallCache cache(g, 1 << 20, 4);
  cache.fetch(3, 2, ShardedBallCache::FetchKind::kPrefetch);
  cache.fetch(3, 2, ShardedBallCache::FetchKind::kPrefetch);
  EXPECT_EQ(cache.prefetch_misses(), 1u);
  EXPECT_EQ(cache.prefetch_hits(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
  // The demand fetch of a prefetched ball is a demand hit — the point.
  const auto f = cache.fetch(3, 2);
  EXPECT_TRUE(f.hit);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ShardedBallCache, ConcurrentSameKeyExtractsOnce) {
  Rng rng(71);
  Graph g = graph::barabasi_albert(2000, 2, 2, rng);
  ShardedBallCache cache(g, 64u << 20, 8);
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      const auto ball = cache.get(42, 3);
      EXPECT_EQ(ball->root_global(), 42u);
    });
  }
  for (auto& t : threads) t.join();
  // However the threads interleaved, the BFS ran exactly once: everyone
  // else hit the entry or joined the in-flight extraction (dedup).
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), static_cast<std::size_t>(kThreads - 1));
}

TEST(ShardedBallCache, ConcurrentStressUnderBudgetPressure) {
  Rng rng(72);
  Graph g = graph::barabasi_albert(3000, 2, 3, rng);
  // Tight budget: constant eviction while 8 threads hammer 64 hot keys.
  ShardedBallCache cache(g, 256u << 10, 8);
  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::atomic<std::size_t> serves{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng local(100 + t);
      for (int i = 0; i < kIters; ++i) {
        const graph::NodeId root =
            static_cast<graph::NodeId>(local.below(64) * 47 % 3000);
        const unsigned radius = 2 + static_cast<unsigned>(local.below(2));
        const auto ball = cache.get(root, radius);
        ASSERT_EQ(ball->root_global(), root);
        ASSERT_EQ(ball->radius(), radius);
        serves.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(serves.load(), static_cast<std::size_t>(kThreads * kIters));
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::size_t>(kThreads * kIters));
  EXPECT_LE(cache.bytes(), cache.byte_budget());
  EXPECT_GT(cache.hits(), 0u);  // hot keys must see reuse even while evicting
}

TEST(ShardedBallCache, ClearResetsEverything) {
  Graph g = graph::fixtures::cycle(50);
  ShardedBallCache cache(g, 1 << 20, 4);
  cache.get(1, 2);
  cache.get(1, 2);
  cache.fetch(2, 2, ShardedBallCache::FetchKind::kPrefetch);
  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.prefetch_misses(), 0u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_DOUBLE_EQ(cache.extraction_seconds(), 0.0);
  // Dynamic-mode counters reset with everything else (trivially zero here
  // with no dynamic graph bound; the bound-mode regression lives in
  // dynamic_graph_test's ClearResetsDynamicCountersAndIndex).
  const ShardedBallCache::Stats s = cache.stats();
  EXPECT_EQ(s.invalidations, 0u);
  EXPECT_EQ(s.stale_rejects, 0u);
  EXPECT_EQ(s.reverse_index_entries, 0u);
}

TEST(ShardedBallCache, StatsSnapshotNeverMixesResetState) {
  // Regression: hit_rate() used to read hits and misses as two separate
  // atomic loads, so a concurrent clear() between them produced a mixed
  // view (pre-reset hits over post-reset misses — a transient 100% hit
  // rate from thin air). stats() must hand back either the fully
  // populated or the fully reset counters, never a blend.
  Graph g = graph::fixtures::cycle(100);
  ShardedBallCache cache(g, 1 << 20, 2);
  const int rounds = 100;
  for (int round = 0; round < rounds; ++round) {
    // Known pattern: 3 misses (cold keys) + 5 hits, no concurrent fetches.
    for (graph::NodeId root : {1u, 2u, 3u}) cache.get(root, 2);
    for (int i = 0; i < 5; ++i) cache.get(1, 2);
    std::atomic<bool> cleared{false};
    std::thread clearer([&] {
      cache.clear();
      cleared.store(true);
    });
    while (!cleared.load()) {
      const ShardedBallCache::Stats s = cache.stats();
      const bool populated = s.hits == 5 && s.misses == 3;
      const bool reset = s.hits == 0 && s.misses == 0;
      ASSERT_TRUE(populated || reset)
          << "mixed snapshot: hits=" << s.hits << " misses=" << s.misses;
      const double rate = cache.hit_rate();
      ASSERT_TRUE(rate == 0.0 || rate == 5.0 / 8.0)
          << "mixed hit rate " << rate;
    }
    clearer.join();
    const ShardedBallCache::Stats final_stats = cache.stats();
    EXPECT_EQ(final_stats.hits, 0u);
    EXPECT_EQ(final_stats.misses, 0u);
  }
}

TEST(ShardedBallCache, TracksExtractionSeconds) {
  Graph g = graph::fixtures::cycle(100);
  ShardedBallCache cache(g, 1 << 20, 2);
  cache.get(3, 3);
  const double after_miss = cache.extraction_seconds();
  EXPECT_GT(after_miss, 0.0);
  cache.get(3, 3);
  EXPECT_DOUBLE_EQ(cache.extraction_seconds(), after_miss);  // hit is free
}

TEST(ShardedBallCache, FailedExtractionStillCountsTheAccess) {
  // A fetch whose BFS throws must still count as a miss — both the
  // claiming thread's and every thread that deduped onto the doomed
  // in-flight extraction. Before the fix the dedup path rethrew without
  // counting, so hit/miss totals silently drifted under failures.
  Graph g = graph::fixtures::cycle(100);
  ShardedBallCache cache(g, 1 << 20, 1);
  EXPECT_THROW(cache.fetch(999, 2, ShardedBallCache::FetchKind::kDemand),
               std::invalid_argument);  // root out of range
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // Concurrently: every access of the doomed key fails exactly once,
  // whether it claimed the extraction, joined it in flight, or raced the
  // un-claim — totals must equal accesses with zero hits.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 40;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::size_t i = 0; i < kIters; ++i) {
        try {
          (void)cache.fetch(999, 3,
                            ShardedBallCache::FetchKind::kDemand);
        } catch (const std::invalid_argument&) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), kThreads * kIters);
  const ShardedBallCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1 + kThreads * kIters);
  EXPECT_EQ(s.hits, 0u);
}

TEST(ShardedBallCache, FlakyExtractorWakesWaitersForReattempt) {
  // When the claiming thread's extraction throws, every thread deduped
  // onto the in-flight slot must be woken with the same exception and the
  // key left unclaimed — a later attempt (the engine's extraction-retry
  // budget) claims afresh and can succeed. A waiter left sleeping on the
  // doomed promise would hang this test.
  Graph g = graph::fixtures::cycle(200);
  ShardedBallCache cache(g, 1 << 20, 1);
  std::atomic<int> extractions{0};
  // In-flight dedup serializes extractor calls for a single key, so the
  // counter decides deterministically: the first 3 claims fail.
  cache.set_extractor(
      [&extractions](const Graph& graph, graph::NodeId root,
                     unsigned radius) -> graph::Subgraph {
        if (extractions.fetch_add(1) < 3) {
          throw std::runtime_error("injected extractor fault");
        }
        return graph::extract_ball(graph, root, radius);
      });

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<std::size_t> served{0};
  std::atomic<std::size_t> faulted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (;;) {
        try {
          const auto ball = cache.get(7, 2);
          EXPECT_EQ(ball->root_global(), 7u);
          served.fetch_add(1, std::memory_order_relaxed);
          return;
        } catch (const std::runtime_error&) {
          faulted.fetch_add(1, std::memory_order_relaxed);  // woken — retry
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(served.load(), static_cast<std::size_t>(kThreads));
  EXPECT_GE(faulted.load(), 3u);  // each failed claim surfaced at least once
  EXPECT_EQ(cache.extraction_failures(), 3u);
  EXPECT_EQ(cache.entries(), 1u);  // the eventual success was cached
}

TEST(ShardedBallCache, SetExtractorSwapsAndRestoresDefault) {
  Graph g = graph::fixtures::cycle(100);
  ShardedBallCache cache(g, 1 << 20, 1);
  cache.set_extractor(
      meloppr::make_flaky_extractor(meloppr::FaultPlan::parse("extractor=1")));
  EXPECT_THROW(cache.get(3, 2), std::runtime_error);
  EXPECT_EQ(cache.extraction_failures(), 1u);
  EXPECT_EQ(cache.stats().extraction_failures, 1u);
  cache.set_extractor({});  // empty restores graph::extract_ball
  EXPECT_EQ(cache.get(3, 2)->root_global(), 3u);
  cache.clear();
  EXPECT_EQ(cache.extraction_failures(), 0u);
}

TEST(ShardedBallCache, PinnedSideTableIsBoundedAndDroppable) {
  Graph g = graph::fixtures::cycle(400);
  ShardedBallCache cache(g, 1 << 20, 1, CacheAdmission::kAlways,
                         /*pin_capacity=*/2);
  cache.fetch(0, 2, ShardedBallCache::FetchKind::kPinnedRootPrefetch);
  cache.fetch(10, 2, ShardedBallCache::FetchKind::kPinnedRootPrefetch);
  cache.fetch(20, 2, ShardedBallCache::FetchKind::kPinnedRootPrefetch);
  EXPECT_EQ(cache.pins_installed(), 2u);  // the third was over capacity
  EXPECT_EQ(cache.pinned_entries(), 2u);
  EXPECT_GT(cache.pinned_bytes(), 0u);
  // Re-prefetching a pinned key never double-pins.
  cache.fetch(0, 2, ShardedBallCache::FetchKind::kPinnedRootPrefetch);
  EXPECT_EQ(cache.pinned_entries(), 2u);

  cache.drop_pins();
  EXPECT_EQ(cache.pinned_entries(), 0u);
  EXPECT_EQ(cache.pinned_bytes(), 0u);
  EXPECT_EQ(cache.pins_expired(), 2u);
  EXPECT_EQ(cache.pin_hits(), 0u);
}

TEST(ShardedBallCache, ResidentClaimFreesPinEarly) {
  // Budget is ample, so the prefetched ball is both resident and pinned;
  // the claim is served from the LRU and the now-pointless pin is freed
  // without counting as a pin hit.
  Graph g = graph::fixtures::cycle(400);
  ShardedBallCache cache(g, 1 << 20, 1);
  cache.fetch(0, 2, ShardedBallCache::FetchKind::kPinnedRootPrefetch);
  EXPECT_EQ(cache.pinned_entries(), 1u);

  const ShardedBallCache::Fetch claimed =
      cache.fetch(0, 2, ShardedBallCache::FetchKind::kDemand);
  EXPECT_TRUE(claimed.hit);
  EXPECT_FALSE(claimed.pinned);  // served from the LRU, not the pin
  EXPECT_EQ(cache.pinned_entries(), 0u);
  EXPECT_EQ(cache.pins_expired(), 1u);
  EXPECT_EQ(cache.pin_hits(), 0u);
}

TEST(ShardedBallCache, ClearDropsPinsSketchAndSizeEstimate) {
  Graph g = graph::fixtures::cycle(400);
  ShardedBallCache cache(g, 1 << 20, 2, CacheAdmission::kTinyLFU);
  cache.fetch(0, 2, ShardedBallCache::FetchKind::kPinnedRootPrefetch);
  cache.get(10, 2);
  EXPECT_GT(cache.ewma_ball_bytes(), 0u);
  EXPECT_GT(cache.ewma_ball_bytes(2), 0u);
  EXPECT_EQ(cache.ewma_ball_bytes(5), 0u);  // no radius-5 extraction yet
  EXPECT_EQ(cache.pinned_entries(), 1u);

  cache.clear();
  EXPECT_EQ(cache.pinned_entries(), 0u);
  EXPECT_EQ(cache.pinned_bytes(), 0u);
  EXPECT_EQ(cache.ewma_ball_bytes(), 0u);
  EXPECT_EQ(cache.ewma_ball_bytes(2), 0u);
  const ShardedBallCache::Stats s = cache.stats();
  EXPECT_EQ(s.pins_installed, 0u);
  EXPECT_EQ(s.pin_hits, 0u);
  EXPECT_EQ(s.pins_expired, 0u);
  EXPECT_EQ(s.root_reextractions, 0u);
}

TEST(ShardedBallCache, EvictionScanWindowAdaptsToShardPopulation) {
  // ~10% of residents, floored at the old fixed window (small shards keep
  // PR 4/5 behavior bit-for-bit) and capped by the plan loop's stack array.
  EXPECT_EQ(ShardedBallCache::eviction_scan_window(0),
            ShardedBallCache::kMinEvictionScanWindow);
  EXPECT_EQ(ShardedBallCache::eviction_scan_window(79), 8u);
  EXPECT_EQ(ShardedBallCache::eviction_scan_window(80), 8u);
  EXPECT_EQ(ShardedBallCache::eviction_scan_window(100), 10u);
  EXPECT_EQ(ShardedBallCache::eviction_scan_window(350), 35u);
  EXPECT_EQ(ShardedBallCache::eviction_scan_window(640),
            ShardedBallCache::kMaxEvictionScanWindow);
  EXPECT_EQ(ShardedBallCache::eviction_scan_window(1'000'000),
            ShardedBallCache::kMaxEvictionScanWindow);
}

TEST(ShardedBallCache, PinAdmissionPrefersSeedsClosestToClaim) {
  // Pin-table capacity duel: the table is full of far-from-claim pins; a
  // seed with a strictly lower stream index displaces the farthest one.
  // The 1-byte budget keeps every ball out of the LRU, so hits below can
  // only come from the pinned side-table.
  Graph g = graph::fixtures::cycle(400);
  ShardedBallCache cache(g, /*byte_budget=*/1, 1, CacheAdmission::kAlways,
                         /*pin_capacity=*/2);
  using FK = ShardedBallCache::FetchKind;
  cache.fetch(0, 2, FK::kPinnedRootPrefetch, /*claim_priority=*/5);
  cache.fetch(10, 2, FK::kPinnedRootPrefetch, /*claim_priority=*/7);
  EXPECT_EQ(cache.pinned_entries(), 2u);

  // Not strictly closer than the worst pin (7): skipped, as before.
  cache.fetch(20, 2, FK::kPinnedRootPrefetch, /*claim_priority=*/7);
  EXPECT_EQ(cache.pinned_entries(), 2u);
  EXPECT_EQ(cache.pin_displacements(), 0u);
  // The default no-priority pin loses every duel.
  cache.fetch(30, 2, FK::kPinnedRootPrefetch);
  EXPECT_EQ(cache.pin_displacements(), 0u);

  // Strictly closer: displaces the priority-7 pin.
  cache.fetch(40, 2, FK::kPinnedRootPrefetch, /*claim_priority=*/1);
  EXPECT_EQ(cache.pinned_entries(), 2u);
  EXPECT_EQ(cache.pin_displacements(), 1u);
  EXPECT_EQ(cache.pins_expired(), 1u);  // displacement counts as expiry

  // The survivors are the close seeds: claiming each is a pin hit; the
  // displaced key 10 must re-extract on demand.
  const ShardedBallCache::Fetch near0 = cache.fetch(0, 2, FK::kDemand);
  EXPECT_TRUE(near0.hit);
  EXPECT_TRUE(near0.pinned);
  EXPECT_TRUE(cache.fetch(40, 2, FK::kDemand).pinned);
  const std::size_t misses_before = cache.stats().misses;
  (void)cache.fetch(10, 2, FK::kDemand);
  EXPECT_EQ(cache.stats().misses, misses_before + 1)
      << "displaced pin should no longer be held";
}

}  // namespace
}  // namespace meloppr::core
