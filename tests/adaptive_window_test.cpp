// AdaptiveWindowController policy tests — the controller is fed explicit
// numbers (busy seconds, wall seconds, thread count, EWMA bytes, byte cap)
// precisely so these run without threads or clocks: every regime of the
// root-prefetch window policy is pinned deterministically.
#include "core/adaptive_window.hpp"

#include <gtest/gtest.h>

#include <cstddef>

namespace meloppr::core {
namespace {

TEST(AdaptiveWindow, ColdStartHoldsAtFloorUntilSizeEstimateExists) {
  // Before the first completed extraction there is no ball-size estimate,
  // so the byte cap cannot be converted to seeds: the cold start is held
  // at min_window (the static knob's burst) instead of opening to max
  // into a cache of unknown per-ball capacity — the prefetched balls
  // would churn it the moment they land.
  AdaptiveWindowController c(4, 32);
  EXPECT_EQ(c.window(0.0, 0.0, 2, /*ewma_ball_bytes=*/0, /*cap_bytes=*/0),
            4u);
  EXPECT_EQ(c.last_window(), 4u);
  EXPECT_DOUBLE_EQ(c.idle_fraction(), 1.0);
  // The first size estimate (with a roomy cap) releases the full width.
  EXPECT_EQ(c.window(0.0, 0.0, 2, 1000, 1 << 20), 32u);
}

TEST(AdaptiveWindow, SaturatedThreadsNarrowToMin) {
  AdaptiveWindowController c(1, 8);
  // Two threads fully busy: every 100 ms interval accrues 200 ms of busy
  // time. The smoothed idle fraction decays geometrically to ~0 and the
  // window narrows to the floor. Roomy cap + known ball size throughout,
  // so only the idle signal drives the width.
  double wall = 0.0;
  double busy = 0.0;
  std::size_t last = 8;
  for (int i = 0; i < 60; ++i) {
    wall += 0.1;
    busy += 0.2;
    last = c.window(busy, wall, 2, 1000, 1 << 20);
  }
  EXPECT_EQ(last, 1u);
  EXPECT_LT(c.idle_fraction(), 0.05);
}

TEST(AdaptiveWindow, IdleThreadsWidenBackToMax) {
  AdaptiveWindowController c(1, 8);
  double wall = 0.0;
  double busy = 0.0;
  for (int i = 0; i < 60; ++i) {  // saturate first
    wall += 0.1;
    busy += 0.2;
    c.window(busy, wall, 2, 1000, 1 << 20);
  }
  ASSERT_EQ(c.last_window(), 1u);
  std::size_t last = 0;
  for (int i = 0; i < 60; ++i) {  // then go idle: busy stops accruing
    wall += 0.1;
    last = c.window(busy, wall, 2, 1000, 1 << 20);
  }
  EXPECT_EQ(last, 8u);
  EXPECT_GT(c.idle_fraction(), 0.95);
}

TEST(AdaptiveWindow, ByteCapAlwaysWinsOverIdleSignal) {
  AdaptiveWindowController c(1, 32);
  // Fully idle, but the spare-budget cap only covers two EWMA-sized
  // balls: the window is 2, not 32.
  EXPECT_EQ(c.window(0.0, 0.0, 2, /*ewma_ball_bytes=*/1000,
                     /*cap_bytes=*/2500),
            2u);
  // Saturated cache (cap 0) with a known ball size: the window is 0 —
  // the corrected min(spare, budget/8) contract, a full cache never
  // speculates.
  EXPECT_EQ(c.window(0.0, 0.0, 2, 1000, 0), 0u);
  EXPECT_EQ(c.last_window(), 0u);
}

TEST(AdaptiveWindow, NoSizeEstimateHoldsTheFloor) {
  // ewma == 0 means the cache has never completed an extraction: the
  // byte cap cannot be converted to a seed count, so the width holds at
  // the floor rather than trusting the idle signal alone.
  AdaptiveWindowController c(2, 16);
  EXPECT_EQ(c.window(0.0, 0.0, 4, /*ewma_ball_bytes=*/0, /*cap_bytes=*/0),
            2u);
}

TEST(AdaptiveWindow, TinyIntervalsReuseTheSmoothedEstimate) {
  // Sub-millisecond intervals carry too much timer noise: the idle
  // estimate must not move, only the caps apply.
  AdaptiveWindowController c(1, 8);
  EXPECT_EQ(c.window(0.0, 0.0, 2, 1000, 1 << 20), 8u);
  // A huge busy delta over a 0.1 ms interval would read as >100% busy,
  // but the interval is below the noise floor — idle stays put.
  EXPECT_EQ(c.window(5.0, 1e-4, 2, 1000, 1 << 20), 8u);
  EXPECT_DOUBLE_EQ(c.idle_fraction(), 1.0);
}

TEST(AdaptiveWindow, BoundsAreNormalized) {
  // Degenerate bounds clamp instead of misbehaving: min 0 → 1, and a max
  // below min is raised to min.
  AdaptiveWindowController zero(0, 0);
  EXPECT_EQ(zero.window(0.0, 0.0, 1, 1000, 1 << 20), 1u);
  AdaptiveWindowController inverted(5, 2);
  EXPECT_EQ(inverted.window(0.0, 0.0, 1, 1000, 1 << 20), 5u);
}

}  // namespace
}  // namespace meloppr::core
