#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace meloppr::graph {
namespace {

TEST(GraphIo, LoadsSnapStyleEdgeList) {
  std::istringstream in(
      "# a comment\n"
      "% another comment style\n"
      "\n"
      "10 20\n"
      "20 30\n"
      "10 30\n");
  Graph g = load_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);  // ids compacted
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphIo, CompactsIdsInFirstAppearanceOrder) {
  std::istringstream in("100 7\n7 3\n");
  Graph g = load_edge_list(in);
  // 100→0, 7→1, 3→2
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphIo, ParseErrorReportsLine) {
  std::istringstream in("1 2\nnot numbers\n");
  try {
    load_edge_list(in);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GraphIo, EmptyInputThrows) {
  std::istringstream in("# nothing but comments\n");
  EXPECT_THROW(load_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RoundTripPreservesStructure) {
  Rng rng(9);
  // BA graphs have no isolated nodes; edge-list files cannot represent
  // isolated nodes, so the round-trip contract requires their absence.
  Graph original = barabasi_albert(60, 2, 3, rng);
  std::stringstream buffer;
  save_edge_list(original, buffer);
  Graph loaded = load_edge_list(buffer);
  ASSERT_EQ(loaded.num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  // save_edge_list writes nodes in id order, so identity mapping holds only
  // up to the loader's first-appearance compaction; verify via degrees
  // multiset instead of exact ids.
  std::vector<std::size_t> deg_a;
  std::vector<std::size_t> deg_b;
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    deg_a.push_back(original.degree(v));
    deg_b.push_back(loaded.degree(v));
  }
  std::sort(deg_a.begin(), deg_a.end());
  std::sort(deg_b.begin(), deg_b.end());
  EXPECT_EQ(deg_a, deg_b);
}

TEST(GraphIo, FileRoundTrip) {
  Graph g = fixtures::cycle(12);
  const std::string path = ::testing::TempDir() + "/meloppr_io_test.txt";
  save_edge_list_file(g, path);
  Graph loaded = load_edge_list_file(path);
  EXPECT_EQ(loaded.num_nodes(), 12u);
  EXPECT_EQ(loaded.num_edges(), 12u);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
}


TEST(GraphIoBinary, RoundTripIsExact) {
  Rng rng(10);
  Graph original = barabasi_albert(200, 2, 3, rng);
  std::stringstream buffer;
  save_binary(original, buffer);
  Graph loaded = load_binary(buffer);
  ASSERT_EQ(loaded.num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  // Binary format preserves ids exactly (unlike the text loader's
  // compaction), so adjacency must match verbatim.
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    const auto a = original.neighbors(v);
    const auto b = loaded.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIoBinary, RejectsWrongMagic) {
  std::stringstream buffer("JUNKJUNKJUNKJUNK");
  EXPECT_THROW(load_binary(buffer), std::runtime_error);
}

TEST(GraphIoBinary, RejectsTruncation) {
  Graph g = fixtures::cycle(10);
  std::stringstream buffer;
  save_binary(g, buffer);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_binary(cut), std::runtime_error);
}

TEST(GraphIoBinary, FileRoundTrip) {
  Graph g = fixtures::complete(9);
  const std::string path = ::testing::TempDir() + "/meloppr_io_test.bin";
  save_binary_file(g, path);
  Graph loaded = load_binary_file(path);
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_THROW(load_binary_file("/nonexistent/x.bin"), std::runtime_error);
}

}  // namespace
}  // namespace meloppr::graph
