// Resilient dispatch end to end: circuit breakers, farm retry/deadline/
// failover, graceful per-query degradation, and the bit-exact CPU failover
// invariant — all under deterministic fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_ball_cache.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "hw/farm.hpp"
#include "test_support.hpp"
#include "util/circuit_breaker.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace meloppr {
namespace {

using core::BackendResult;
using core::CpuBackend;
using core::Engine;
using core::FailoverBackend;
using core::MelopprConfig;
using core::PipelineConfig;
using core::QueryOutcome;
using core::QueryPipeline;
using core::QueryResult;
using core::RunStatus;
using core::ShardedBallCache;
using graph::Graph;
using hw::DispatchPolicy;
using hw::FpgaFarm;

// ---------------------------------------------------------------------------
// CircuitBreaker state machine (clock-free: `now` is synthetic throughout).
// ---------------------------------------------------------------------------

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreaker breaker(3, 1.0);
  EXPECT_TRUE(breaker.closed());
  breaker.record_failure(0.0);
  breaker.record_failure(0.1);
  EXPECT_TRUE(breaker.closed());  // streak of 2 < threshold
  EXPECT_EQ(breaker.consecutive_failures(), 2u);
  breaker.record_failure(0.2);
  EXPECT_FALSE(breaker.closed());
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.state(0.2), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreaker, SuccessResetsTheStreak) {
  CircuitBreaker breaker(3, 1.0);
  breaker.record_failure(0.0);
  breaker.record_failure(0.1);
  breaker.record_success();
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  breaker.record_failure(0.2);
  breaker.record_failure(0.3);
  EXPECT_TRUE(breaker.closed());  // streak restarted — still below threshold
}

TEST(CircuitBreaker, ProbeMaturesReclosesOnSuccess) {
  CircuitBreaker breaker(1, 1.0);
  breaker.record_failure(5.0);  // trips immediately (threshold 1)
  EXPECT_FALSE(breaker.closed());
  EXPECT_FALSE(breaker.probe_ready(5.5));  // timer not matured
  EXPECT_EQ(breaker.state(5.5), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.probe_ready(6.0));
  breaker.begin_probe();
  EXPECT_EQ(breaker.state(6.0), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.probe_ready(6.0));  // single probe slot claimed
  breaker.record_success();
  EXPECT_TRUE(breaker.closed());  // device rejoined rotation
  EXPECT_EQ(breaker.probes(), 1u);
}

TEST(CircuitBreaker, FailedProbeReopensAndRearms) {
  CircuitBreaker breaker(1, 1.0);
  breaker.record_failure(0.0);
  ASSERT_TRUE(breaker.probe_ready(1.0));
  breaker.begin_probe();
  breaker.record_failure(1.0);  // probe did not pay off
  EXPECT_FALSE(breaker.closed());
  EXPECT_FALSE(breaker.probe_ready(1.5));  // re-armed: 1.0 + interval
  EXPECT_TRUE(breaker.probe_ready(2.0));
  EXPECT_EQ(breaker.trips(), 1u);  // a failed probe is not a new trip
}

TEST(CircuitBreaker, OpenStateFailurePushesProbeHorizon) {
  // A dispatch that checked out before the trip can fail while the breaker
  // is already open without a probe claim; the probe timer must re-arm.
  CircuitBreaker breaker(1, 1.0);
  breaker.record_failure(0.0);
  breaker.record_failure(1.5);  // open, no probe in flight
  EXPECT_FALSE(breaker.probe_ready(2.0));  // horizon pushed to 2.5
  EXPECT_TRUE(breaker.probe_ready(2.5));
}

TEST(CircuitBreaker, KillIsTerminal) {
  CircuitBreaker breaker(3, 0.1);
  breaker.kill();
  EXPECT_TRUE(breaker.dead());
  EXPECT_FALSE(breaker.closed());
  EXPECT_FALSE(breaker.probe_ready(1e9));  // no probe ever re-admits
  breaker.record_success();  // ignored once dead
  EXPECT_TRUE(breaker.dead());
  EXPECT_EQ(breaker.state(0.0), CircuitBreaker::State::kDead);
}

TEST(CircuitBreaker, ZeroThresholdNeverTrips) {
  CircuitBreaker breaker(0, 0.1);
  for (int i = 0; i < 100; ++i) breaker.record_failure(i);
  EXPECT_TRUE(breaker.closed());
  EXPECT_EQ(breaker.trips(), 0u);
}

// ---------------------------------------------------------------------------
// Farm-level resilience under injected fault plans.
// ---------------------------------------------------------------------------

class FarmFaultTest : public ::testing::Test {
 protected:
  FarmFaultTest() : rng_(test::test_seed()) {
    g_ = graph::barabasi_albert(400, 2, 2, rng_);
    ball_ = graph::extract_ball(g_, 7, 3);
  }

  [[nodiscard]] hw::Quantizer quantizer() const {
    // Exactly make_cpu_backend's derivation, so the farm's fixed-point
    // scores are comparable to the host path at zero tolerance.
    return hw::Quantizer::from_graph_stats(
        0.85, 10, hw::DChoice::kHalfMaxDegree, g_.average_degree(),
        g_.max_degree(), g_.num_nodes());
  }

  [[nodiscard]] FpgaFarm make_farm(std::size_t devices,
                                   const DispatchPolicy& policy,
                                   const FaultPlan& plan) const {
    hw::AcceleratorConfig cfg;
    cfg.parallelism = 4;
    return FpgaFarm(devices, cfg, quantizer(), policy, plan);
  }

  Rng rng_;
  Graph g_;
  graph::Subgraph ball_;
};

TEST_F(FarmFaultTest, EmptyPlanDispatchesUnwrapped) {
  FpgaFarm farm = make_farm(2, DispatchPolicy{}, FaultPlan{});
  EXPECT_EQ(farm.name(), "farm(2x fpga(P=4))");  // no faulty(...) wrapper
  const BackendResult r = farm.run(ball_, 1.0, 3);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.attempts, 1u);
  const core::DispatchHealth h = farm.dispatch_health();
  EXPECT_EQ(h.devices, 2u);
  EXPECT_EQ(h.healthy_devices, 2u);
  EXPECT_EQ(h.retries, 0u);
}

TEST_F(FarmFaultTest, RetriesAbsorbTransientFaults) {
  FaultPlan plan = FaultPlan::parse("transient=0.5");
  plan.seed = test::test_seed();
  DispatchPolicy policy;
  policy.max_attempts = 4;
  policy.breaker_failure_threshold = 0;  // isolate the retry layer
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm = make_farm(2, policy, plan);
  EXPECT_NE(farm.name().find("faulty("), std::string::npos);

  std::size_t ok_runs = 0;
  std::size_t multi_attempt_runs = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    const BackendResult r = farm.run(ball_, 1.0, 3);
    if (r.ok()) {
      ++ok_runs;
      if (r.attempts > 1) ++multi_attempt_runs;
    } else {
      // Budget exhausted: the typed channel, never a throw.
      EXPECT_EQ(r.status, RunStatus::kTransientFault);
      EXPECT_EQ(r.attempts, policy.max_attempts);
      EXPECT_TRUE(r.accumulated.empty());
    }
  }
  // p(fail one attempt)=0.5 → p(exhaust 4)=1/16: most runs must succeed,
  // and some must have needed a retry.
  EXPECT_GE(ok_runs, 40u);
  EXPECT_GT(multi_attempt_runs, 0u);
  EXPECT_GT(farm.dispatch_health().retries, 0u);
}

TEST_F(FarmFaultTest, StickyDeathShrinksRotationButServiceContinues) {
  FaultPlan plan = FaultPlan::parse("death=3@0");
  plan.seed = test::test_seed();
  DispatchPolicy policy;
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm = make_farm(2, policy, plan);

  for (std::size_t i = 0; i < 20; ++i) {
    const BackendResult r = farm.run(ball_, 1.0, 3);
    // Device 0's death burns one attempt; device 1 absorbs the retry.
    EXPECT_TRUE(r.ok()) << "run " << i << ": " << r.error;
  }
  EXPECT_EQ(farm.device_count(), 2u);
  EXPECT_EQ(farm.dead_device_count(), 1u);
  EXPECT_EQ(farm.healthy_device_count(), 1u);
  const core::DispatchHealth h = farm.dispatch_health();
  EXPECT_EQ(h.dead_devices, 1u);
  EXPECT_GT(h.retries, 0u);  // the death was discovered mid-run and retried
}

TEST_F(FarmFaultTest, NoHealthyDeviceFailsFastWithoutBlocking) {
  FaultPlan plan = FaultPlan::parse("death=0@0");  // device 0 dead on arrival
  DispatchPolicy policy;
  policy.max_attempts = 2;
  policy.breaker_probe_seconds = 3600.0;  // probes far beyond the test
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm = make_farm(1, policy, plan);

  const BackendResult first = farm.run(ball_, 1.0, 3);
  EXPECT_FALSE(first.ok());  // the only device is dead
  EXPECT_EQ(farm.healthy_device_count(), 0u);

  // Subsequent runs must return kNoHealthyDevice immediately — no waiting
  // on probe timers, so the failover layer can serve without stalling.
  const BackendResult r = farm.run(ball_, 1.0, 3);
  EXPECT_EQ(r.status, RunStatus::kNoHealthyDevice);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_FALSE(r.error.empty());
  EXPECT_GT(farm.dispatch_health().exhausted_runs, 0u);
}

TEST_F(FarmFaultTest, BreakerTripsTakeFlakyDeviceOutOfRotation) {
  FaultPlan plan = FaultPlan::parse("transient=1");  // every dispatch fails
  plan.seed = test::test_seed();
  DispatchPolicy policy;
  policy.max_attempts = 6;
  policy.breaker_failure_threshold = 2;
  policy.breaker_probe_seconds = 3600.0;
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm = make_farm(2, policy, plan);

  const BackendResult r = farm.run(ball_, 1.0, 3);
  EXPECT_FALSE(r.ok());
  // 2 devices × threshold 2 = 4 failures trip both breakers; the remaining
  // attempts find nothing dispatchable.
  EXPECT_EQ(r.status, RunStatus::kNoHealthyDevice);
  EXPECT_EQ(farm.healthy_device_count(), 0u);
  EXPECT_EQ(farm.dead_device_count(), 0u);  // tripped, not dead
  const core::DispatchHealth h = farm.dispatch_health();
  EXPECT_EQ(h.breaker_trips, 2u);
}

TEST_F(FarmFaultTest, ProbeReadmitsRecoveredDevice) {
  FaultPlan plan = FaultPlan::parse("transient=1");
  plan.seed = test::test_seed();
  DispatchPolicy policy;
  policy.max_attempts = 3;
  policy.breaker_failure_threshold = 1;
  policy.breaker_probe_seconds = 0.0;  // probes mature immediately
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm = make_farm(1, policy, plan);

  const BackendResult r = farm.run(ball_, 1.0, 3);
  EXPECT_FALSE(r.ok());
  // With a matured probe timer every later attempt claims the half-open
  // probe — traffic keeps flowing to an open breaker.
  EXPECT_GT(farm.dispatch_health().probes, 0u);
}

TEST_F(FarmFaultTest, DeadlineMissDiscardsLateAttempts) {
  // Every run spikes 5ms against a 1ms deadline: attempts complete with
  // correct scores but are discarded as late.
  FaultPlan plan = FaultPlan::parse("spike=1:0.005");
  plan.seed = test::test_seed();
  DispatchPolicy policy;
  policy.max_attempts = 2;
  policy.run_deadline_seconds = 1e-3;
  policy.breaker_failure_threshold = 0;
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm = make_farm(1, policy, plan);

  const BackendResult r = farm.run(ball_, 1.0, 3);
  EXPECT_EQ(r.status, RunStatus::kDeadlineMiss);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.deadline_misses, 2u);
  EXPECT_TRUE(r.accumulated.empty());  // a late answer is discarded whole
  EXPECT_EQ(farm.dispatch_health().deadline_misses, 2u);
}

TEST_F(FarmFaultTest, CallerErrorsStillPropagate) {
  FaultPlan plan = FaultPlan::parse("transient=0.2");
  plan.seed = test::test_seed();
  DispatchPolicy policy;
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm = make_farm(2, policy, plan);
  const graph::Subgraph empty_ball;
  // A bad ball is a bug/caller error on every device: it must throw, not
  // burn the retry budget (pipeline batch-abort semantics depend on this).
  EXPECT_ANY_THROW(farm.run(empty_ball, 1.0, 3));
  // The device the throw happened on must have been released.
  EXPECT_TRUE(farm.run(ball_, 1.0, 3).ok());
}

TEST_F(FarmFaultTest, ResetRearmsBreakersButNotInjectedDeath) {
  FaultPlan plan = FaultPlan::parse("death=0@0");
  DispatchPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm = make_farm(2, policy, plan);
  ASSERT_TRUE(farm.run(ball_, 1.0, 3).ok());  // device 1 absorbs
  EXPECT_EQ(farm.dead_device_count(), 1u);
  farm.reset();
  EXPECT_EQ(farm.dead_device_count(), 0u);  // breaker re-armed...
  ASSERT_TRUE(farm.run(ball_, 1.0, 3).ok());
  EXPECT_EQ(farm.dead_device_count(), 1u);  // ...but the device is still dead
}

// ---------------------------------------------------------------------------
// Bit-exact failover: farm → fixed-point host path.
// ---------------------------------------------------------------------------

TEST_F(FarmFaultTest, FailoverServesBitIdenticalScores) {
  MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.numerics = ppr::Numerics::kFixedPoint;
  const std::unique_ptr<core::DiffusionBackend> reference =
      core::make_cpu_backend(g_, cfg);
  const BackendResult want = reference->run(ball_, 1.0, 3);
  ASSERT_TRUE(want.ok());

  // A farm whose only device is dead: every run fails over to the host.
  FaultPlan plan = FaultPlan::parse("death=0@0");
  DispatchPolicy policy;
  policy.max_attempts = 2;
  policy.breaker_probe_seconds = 3600.0;
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm = make_farm(1, policy, plan);
  const std::unique_ptr<core::DiffusionBackend> fallback =
      core::make_cpu_backend(g_, cfg);
  FailoverBackend failover(farm, *fallback);

  const BackendResult got = failover.run(ball_, 1.0, 3);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.failed_over);
  EXPECT_GE(got.attempts, 2u);  // the farm's failed attempts are charged
  EXPECT_EQ(failover.failovers(), 1u);
  ASSERT_EQ(got.accumulated.size(), want.accumulated.size());
  for (std::size_t v = 0; v < want.accumulated.size(); ++v) {
    // EXPECT_EQ on doubles: bit-identical is the contract, not "near".
    EXPECT_EQ(got.accumulated[v], want.accumulated[v]) << "node " << v;
    EXPECT_EQ(got.inflight[v], want.inflight[v]) << "node " << v;
  }
  EXPECT_EQ(failover.dispatch_health().failovers, 1u);
}

TEST_F(FarmFaultTest, HealthyPrimaryNeverFailsOver) {
  MelopprConfig cfg;
  cfg.numerics = ppr::Numerics::kFixedPoint;
  FpgaFarm farm = make_farm(2, DispatchPolicy{}, FaultPlan{});
  const std::unique_ptr<core::DiffusionBackend> fallback =
      core::make_cpu_backend(g_, cfg);
  FailoverBackend failover(farm, *fallback);
  const BackendResult r = failover.run(ball_, 1.0, 3);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.failed_over);
  EXPECT_EQ(failover.failovers(), 0u);
  EXPECT_NE(failover.name().find("failover(farm("), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine/pipeline graceful degradation.
// ---------------------------------------------------------------------------

MelopprConfig fx_config() {
  MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = 20;
  cfg.selection = core::Selection::top_count(8);
  cfg.numerics = ppr::Numerics::kFixedPoint;
  return cfg;
}

TEST(FaultTolerantQuery, DegradedQueriesStayBitIdentical) {
  Rng rng(test::test_seed());
  const Graph g = graph::barabasi_albert(800, 2, 2, rng);
  const MelopprConfig cfg = fx_config();
  Engine engine(g, cfg);

  // Reference: the healthy fixed-point host path, serial engine.
  const std::vector<graph::NodeId> seeds{3, 99, 250, 421, 777};
  std::vector<QueryResult> want;
  for (const graph::NodeId s : seeds) want.push_back(engine.query(s));

  // Faulty farm (transients + one sticky death) behind a bit-exact host
  // fallback: every query must complete with identical scores.
  const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
      cfg.alpha, cfg.fixed_point_q, cfg.fixed_point_d, g.average_degree(),
      g.max_degree(), g.num_nodes());
  hw::AcceleratorConfig acfg;
  acfg.parallelism = 4;
  FaultPlan plan = FaultPlan::parse("transient=0.2,death=6@1");
  plan.seed = test::test_seed();
  DispatchPolicy policy;
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm(2, acfg, quant, policy, plan);
  const std::unique_ptr<core::DiffusionBackend> fallback =
      core::make_cpu_backend(g, cfg);
  FailoverBackend failover(farm, *fallback);

  bool any_degraded = false;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    core::TopCKAggregator table(cfg.table_capacity());
    const QueryResult got = engine.query(seeds[i], failover, table);
    EXPECT_NE(got.stats.outcome(), QueryOutcome::kFailed);
    EXPECT_EQ(got.stats.failed_balls(), 0u);
    if (got.stats.outcome() == QueryOutcome::kDegraded) any_degraded = true;
    ASSERT_EQ(got.top.size(), want[i].top.size());
    for (std::size_t r = 0; r < want[i].top.size(); ++r) {
      EXPECT_EQ(got.top[r].node, want[i].top[r].node);
      EXPECT_EQ(got.top[r].score, want[i].top[r].score);
    }
  }
  // With p=0.2 transients over hundreds of balls the machinery must have
  // actually engaged (deterministic under the plan seed's default).
  EXPECT_TRUE(any_degraded);
  EXPECT_GT(engine.query(seeds[0], failover, *make_serial_aggregator(
      cfg.aggregation, cfg.k, cfg.topck_c, cfg.topck_epsilon))
                .stats.total_balls(), 0u);
}

TEST(FaultTolerantQuery, ExhaustedDiffusionDegradesNotAborts) {
  // No fallback and a farm whose single device is dead: each ball's
  // diffusion fails past the budget — the query must complete with the
  // failure contained per task, not thrown.
  Rng rng(test::test_seed());
  const Graph g = graph::barabasi_albert(400, 2, 2, rng);
  const MelopprConfig cfg = fx_config();
  Engine engine(g, cfg);

  const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
      cfg.alpha, cfg.fixed_point_q, cfg.fixed_point_d, g.average_degree(),
      g.max_degree(), g.num_nodes());
  hw::AcceleratorConfig acfg;
  acfg.parallelism = 4;
  DispatchPolicy policy;
  policy.max_attempts = 2;
  policy.breaker_probe_seconds = 3600.0;
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm(1, acfg, quant, policy, FaultPlan::parse("death=0@0"));

  core::TopCKAggregator table(cfg.table_capacity());
  QueryResult r;
  ASSERT_NO_THROW(r = engine.query(42, farm, table));
  EXPECT_EQ(r.stats.outcome(), QueryOutcome::kFailed);
  EXPECT_GT(r.stats.failed_balls(), 0u);
  EXPECT_TRUE(r.top.empty());  // the root ball itself failed: lower bound {}
}

TEST(FaultTolerantQuery, FlakyExtractorRetriedToIdenticalScores) {
  Rng rng(test::test_seed());
  const Graph g = graph::barabasi_albert(600, 2, 2, rng);
  MelopprConfig cfg = fx_config();
  cfg.extraction_attempts = 6;
  Engine engine(g, cfg);
  const QueryResult want = engine.query(17);

  FaultPlan plan = FaultPlan::parse("extractor=0.3");
  plan.seed = test::test_seed();
  ShardedBallCache cache(g, 64u << 20);
  cache.set_extractor(make_flaky_extractor(plan));
  engine.set_shared_ball_cache(&cache);
  const std::unique_ptr<core::DiffusionBackend> backend =
      core::make_cpu_backend(g, cfg);
  core::TopCKAggregator table(cfg.table_capacity());
  const QueryResult got = engine.query(17, *backend, table);
  engine.set_shared_ball_cache(nullptr);

  // p(6 consecutive extractor faults) = 0.3^6 ≈ 7e-4 per ball: the retry
  // budget absorbs the flakiness (deterministic for the default seed).
  EXPECT_EQ(got.stats.failed_balls(), 0u);
  EXPECT_GT(got.stats.extraction_faults(), 0u);
  EXPECT_EQ(got.stats.outcome(), QueryOutcome::kDegraded);
  EXPECT_GT(cache.extraction_failures(), 0u);
  ASSERT_EQ(got.top.size(), want.top.size());
  for (std::size_t r = 0; r < want.top.size(); ++r) {
    EXPECT_EQ(got.top[r].node, want.top[r].node);
    EXPECT_EQ(got.top[r].score, want.top[r].score);
  }
}

TEST(FaultTolerantQuery, ExtractorDeadOnEveryAttemptFailsTheBallOnly) {
  Rng rng(test::test_seed());
  const Graph g = graph::barabasi_albert(300, 2, 2, rng);
  MelopprConfig cfg = fx_config();
  cfg.extraction_attempts = 3;
  Engine engine(g, cfg);
  ShardedBallCache cache(g, 64u << 20);
  cache.set_extractor(make_flaky_extractor(FaultPlan::parse("extractor=1")));
  engine.set_shared_ball_cache(&cache);
  const std::unique_ptr<core::DiffusionBackend> backend =
      core::make_cpu_backend(g, cfg);
  core::TopCKAggregator table(cfg.table_capacity());
  QueryResult r;
  ASSERT_NO_THROW(r = engine.query(5, *backend, table));
  engine.set_shared_ball_cache(nullptr);
  EXPECT_EQ(r.stats.outcome(), QueryOutcome::kFailed);
  EXPECT_EQ(r.stats.extraction_faults(), 3u);  // the budget, no more
  EXPECT_EQ(cache.stats().extraction_failures, 3u);
}

TEST(FaultTolerantBatch, ZeroAbortsAndBitIdenticalUnderFaultPlan) {
  // The PR's acceptance scenario: a batch under transient faults plus one
  // sticky device death mid-batch completes with zero aborts and scores
  // bit-identical to the fault-free fixed-point run.
  Rng rng(test::test_seed());
  const Graph g = graph::barabasi_albert(1000, 2, 2, rng);
  const MelopprConfig cfg = fx_config();
  Engine engine(g, cfg);

  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 16; ++s) seeds.push_back((s * 61 + 5) % 1000);
  std::vector<QueryResult> want;
  for (const graph::NodeId s : seeds) want.push_back(engine.query(s));

  const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
      cfg.alpha, cfg.fixed_point_q, cfg.fixed_point_d, g.average_degree(),
      g.max_degree(), g.num_nodes());
  hw::AcceleratorConfig acfg;
  acfg.parallelism = 4;
  FaultPlan plan = FaultPlan::parse("transient=0.1,death=10@0");
  plan.seed = test::test_seed();
  DispatchPolicy policy;
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm(2, acfg, quant, policy, plan);
  const std::unique_ptr<core::DiffusionBackend> fallback =
      core::make_cpu_backend(g, cfg);
  FailoverBackend failover(farm, *fallback);

  ShardedBallCache cache(g, 128u << 20);
  engine.set_shared_ball_cache(&cache);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  pcfg.work_stealing = true;
  QueryPipeline pipeline(engine, failover, pcfg);
  QueryPipeline::BatchStats batch;
  std::vector<QueryResult> got;
  ASSERT_NO_THROW(got = pipeline.query_batch(seeds, &batch));
  engine.set_shared_ball_cache(nullptr);

  ASSERT_EQ(got.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_NE(got[i].stats.outcome(), QueryOutcome::kFailed) << "seed " << i;
    ASSERT_EQ(got[i].top.size(), want[i].top.size()) << "seed " << i;
    for (std::size_t r = 0; r < want[i].top.size(); ++r) {
      EXPECT_EQ(got[i].top[r].node, want[i].top[r].node);
      EXPECT_EQ(got[i].top[r].score, want[i].top[r].score);
    }
  }
  // The batch accounting must show the machinery engaged and the death.
  EXPECT_EQ(batch.failed_queries, 0u);
  EXPECT_EQ(batch.failed_balls, 0u);
  EXPECT_EQ(batch.devices, 2u);
  EXPECT_EQ(batch.dead_devices, 1u);
  EXPECT_EQ(batch.healthy_devices, 1u);
  EXPECT_GT(batch.dispatch_retries + batch.failovers, 0u);
}

TEST(FaultTolerantBatch, InvariantViolationsStillAbortTheBatch) {
  // The containment boundary must not swallow bugs: a caller error inside
  // a batch still propagates (pipeline_test's WorkerExceptionsPropagate
  // covers the pipeline side; this pins the farm's behavior with a plan).
  Rng rng(test::test_seed());
  const Graph g = graph::barabasi_albert(300, 2, 2, rng);
  const MelopprConfig cfg = fx_config();
  Engine engine(g, cfg);
  const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
      cfg.alpha, cfg.fixed_point_q, cfg.fixed_point_d, g.average_degree(),
      g.max_degree(), g.num_nodes());
  hw::AcceleratorConfig acfg;
  acfg.parallelism = 4;
  FaultPlan plan = FaultPlan::parse("transient=0.1");
  plan.seed = test::test_seed();
  FpgaFarm farm(2, acfg, quant, DispatchPolicy{}, plan);
  core::TopCKAggregator table(cfg.table_capacity());
  // Seed beyond the graph: std::invalid_argument from extraction.
  EXPECT_THROW(engine.query(5'000'000, farm, table), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Concurrent fault hammer (the TSan target): stealing batch + prefetch +
// faulty farm + flaky extractor, all at once.
// ---------------------------------------------------------------------------

TEST(FaultTolerantBatch, ConcurrentFaultHammer) {
  Rng rng(test::test_seed());
  const Graph g = graph::barabasi_albert(900, 2, 2, rng);
  MelopprConfig cfg = fx_config();
  cfg.extraction_attempts = 8;
  Engine engine(g, cfg);

  std::vector<graph::NodeId> seeds;
  const std::size_t batch_size = test::stress_iters(48);
  for (std::size_t s = 0; s < batch_size; ++s) {
    seeds.push_back(static_cast<graph::NodeId>((s * 37 + 11) % 900));
  }
  std::vector<QueryResult> want;
  for (const graph::NodeId s : seeds) want.push_back(engine.query(s));

  const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
      cfg.alpha, cfg.fixed_point_q, cfg.fixed_point_d, g.average_degree(),
      g.max_degree(), g.num_nodes());
  hw::AcceleratorConfig acfg;
  acfg.parallelism = 4;
  FaultPlan plan = FaultPlan::parse("transient=0.15,death=12@1");
  plan.seed = test::test_seed();
  DispatchPolicy policy;
  policy.backoff_initial_seconds = 1e-6;
  FpgaFarm farm(3, acfg, quant, policy, plan);
  const std::unique_ptr<core::DiffusionBackend> fallback =
      core::make_cpu_backend(g, cfg);
  FailoverBackend failover(farm, *fallback);

  FaultPlan xplan = FaultPlan::parse("extractor=0.05");
  xplan.seed = test::test_seed();
  ShardedBallCache cache(g, 96u << 20);
  cache.set_extractor(make_flaky_extractor(xplan));
  engine.set_shared_ball_cache(&cache);

  PipelineConfig pcfg;
  pcfg.threads = 4;
  pcfg.work_stealing = true;
  pcfg.prefetch = true;
  QueryPipeline pipeline(engine, failover, pcfg);
  QueryPipeline::BatchStats batch;
  std::vector<QueryResult> got;
  ASSERT_NO_THROW(got = pipeline.query_batch(seeds, &batch));
  engine.set_shared_ball_cache(nullptr);

  // Under concurrency WHICH queries degrade is scheduling-dependent, but
  // every query that did not lose a ball must be bit-identical — fault
  // containment may cost coverage, never correctness.
  ASSERT_EQ(got.size(), seeds.size());
  std::size_t failed = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (got[i].stats.outcome() == QueryOutcome::kFailed) {
      ++failed;
      continue;
    }
    ASSERT_EQ(got[i].top.size(), want[i].top.size()) << "seed " << i;
    for (std::size_t r = 0; r < want[i].top.size(); ++r) {
      EXPECT_EQ(got[i].top[r].node, want[i].top[r].node) << "seed " << i;
      EXPECT_EQ(got[i].top[r].score, want[i].top[r].score) << "seed " << i;
    }
  }
  // The extractor retry budget (8 attempts at p=0.05) makes a lost ball
  // vanishingly rare; diffusions always have the host fallback.
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(batch.queries, seeds.size());
}

}  // namespace
}  // namespace meloppr

int main(int argc, char** argv) {
  return meloppr::test::run_all_tests(argc, argv);
}
