// TinyLFU cache admission (CacheAdmission::kTinyLFU): scan resistance,
// the Zipf hit-rate property vs plain LRU, rejection accounting, and the
// served-but-not-retained contract.
//
// The cycle fixture gives every radius-r ball an identical footprint, so
// budgets can be expressed exactly in "number of balls" and the tests are
// deterministic down to individual admissions.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "core/sharded_ball_cache.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace meloppr::core {
namespace {

using graph::Graph;

/// Footprint of one radius-`radius` ball on `g` (all cycle balls match).
std::size_t one_ball_bytes(const Graph& g, unsigned radius) {
  ShardedBallCache probe(g, std::size_t{1} << 20, 1);
  probe.get(0, radius);
  return probe.bytes();
}

TEST(CacheAdmission, AlwaysAdmitNeverRejects) {
  Graph g = graph::fixtures::cycle(600);
  const std::size_t ball = one_ball_bytes(g, 2);
  ShardedBallCache cache(g, 3 * ball + ball / 2, 1);  // room for 3
  ASSERT_EQ(cache.admission(), CacheAdmission::kAlways);
  for (graph::NodeId root = 0; root < 500; root += 25) cache.get(root, 2);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_EQ(cache.admission_rejects(), 0u);  // LRU admits everything
}

TEST(CacheAdmission, TinyLFUAdmitsFreelyBelowBudget) {
  // The frequency gate only engages under eviction pressure: an
  // unpressured cache retains everything, exactly like kAlways.
  Graph g = graph::fixtures::cycle(600);
  ShardedBallCache cache(g, std::size_t{1} << 20, 1,
                         CacheAdmission::kTinyLFU);
  ASSERT_EQ(cache.admission(), CacheAdmission::kTinyLFU);
  for (graph::NodeId root = 0; root < 200; root += 25) cache.get(root, 2);
  EXPECT_EQ(cache.entries(), 8u);
  EXPECT_EQ(cache.admission_rejects(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(CacheAdmission, ScanResistanceKeepsHotSetResident) {
  // One hot set, repeatedly accessed; then one pass of cold keys larger
  // than the cache. TinyLFU must keep every hot ball resident (the scan
  // keys estimate ~1 and cannot displace balls that were hit repeatedly);
  // plain LRU must have flushed the lot — the regression this test pins.
  Graph g = graph::fixtures::cycle(600);
  const std::size_t ball = one_ball_bytes(g, 2);
  const std::size_t budget = 4 * ball + ball / 2;  // room for the 4 hot balls
  const std::vector<graph::NodeId> hot{0, 150, 300, 450};

  const auto serve = [&](CacheAdmission admission) {
    ShardedBallCache cache(g, budget, 1, admission);
    for (int round = 0; round < 4; ++round) {
      for (graph::NodeId root : hot) cache.get(root, 2);
    }
    // One-pass scan: 30 distinct cold keys, in aggregate ~7x the budget.
    for (graph::NodeId root = 5; root < 305; root += 10) cache.get(root, 2);
    // Probe: how much of the hot set survived the scan?
    const ShardedBallCache::Stats before = cache.stats();
    for (graph::NodeId root : hot) cache.get(root, 2);
    const ShardedBallCache::Stats after = cache.stats();
    return std::pair{after.hits - before.hits, cache.stats()};
  };

  const auto [tiny_hits, tiny_stats] = serve(CacheAdmission::kTinyLFU);
  EXPECT_EQ(tiny_hits, hot.size());  // the entire hot set stayed resident
  EXPECT_GT(tiny_stats.admission_rejects, 0u);  // the scan was turned away
  const auto [lru_hits, lru_stats] = serve(CacheAdmission::kAlways);
  EXPECT_EQ(lru_hits, 0u);  // LRU kept the scan's tail instead
  EXPECT_EQ(lru_stats.admission_rejects, 0u);
  EXPECT_GT(lru_stats.evictions, tiny_stats.evictions);
}

TEST(CacheAdmission, RejectedBallIsStillServedCorrectly) {
  // Admission only decides retention: a rejected fetch still returns the
  // right ball, and the resident set is left exactly as it was.
  Graph g = graph::fixtures::cycle(600);
  const std::size_t ball = one_ball_bytes(g, 2);
  ShardedBallCache cache(g, 2 * ball + ball / 2, 1,
                         CacheAdmission::kTinyLFU);
  for (int round = 0; round < 3; ++round) {
    cache.get(10, 2);
    cache.get(200, 2);
  }
  const std::size_t entries_before = cache.entries();
  const std::size_t bytes_before = cache.bytes();
  const auto served = cache.get(400, 2);  // cold candidate vs hot victims
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->root_global(), 400u);
  EXPECT_EQ(served->radius(), 2u);
  EXPECT_EQ(cache.admission_rejects(), 1u);
  EXPECT_EQ(cache.entries(), entries_before);
  EXPECT_EQ(cache.bytes(), bytes_before);
}

/// Zipf(s) sampler over ranks [0, universe): classic inverse-CDF replay.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t universe, double s) {
    cdf_.reserve(universe);
    double total = 0.0;
    for (std::size_t rank = 0; rank < universe; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
      cdf_.push_back(total);
    }
  }
  [[nodiscard]] std::size_t draw(Rng& rng) const {
    const double u = rng.uniform() * cdf_.back();
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

TEST(CacheAdmission, TinyLFUNeverLowersHitRateOnZipfTrace) {
  // Property (ROADMAP "Cache admission policy"): replaying the same
  // Zipf-skewed trace through both policies at the same budget, TinyLFU's
  // demand hit rate is never below plain LRU's — frequency gating can
  // only stop cold keys from displacing hot ones. Three trace replays per
  // run, seeded from --seed / MELOPPR_TEST_SEED.
  Graph g = graph::fixtures::cycle(2048);
  const std::size_t ball = one_ball_bytes(g, 2);
  const std::size_t budget = 12 * ball + ball / 2;  // far below the universe
  constexpr std::size_t kUniverse = 96;
  const std::size_t trace_len = test::stress_iters(1500);
  const ZipfSampler zipf(kUniverse, 1.1);

  for (int replay = 0; replay < 3; ++replay) {
    Rng rng(test::test_seed() + static_cast<std::uint64_t>(replay) * 7919);
    std::vector<graph::NodeId> trace;
    trace.reserve(trace_len);
    for (std::size_t i = 0; i < trace_len; ++i) {
      // Spread ranks over the cycle so neighboring ranks do not share
      // ball nodes (each key is an independent cache entry).
      trace.push_back(
          static_cast<graph::NodeId>(zipf.draw(rng) * 21 % 2048));
    }
    const auto replay_through = [&](CacheAdmission admission) {
      ShardedBallCache cache(g, budget, 2, admission);
      for (graph::NodeId root : trace) cache.get(root, 2);
      return cache.stats().hit_rate();
    };
    const double lru = replay_through(CacheAdmission::kAlways);
    const double tiny = replay_through(CacheAdmission::kTinyLFU);
    // Strict dominance holds empirically (hundreds of seeds probed), but
    // TinyLFU's admission latency can in principle forfeit an access or
    // two on a shifting working set, so allow exactly that: two trace
    // events of slack — far below any real regression.
    const double slack = 2.0 / static_cast<double>(trace.size());
    EXPECT_GE(tiny + slack, lru)
        << "replay " << replay << " (seed base " << test::test_seed() << ")";
  }
}

TEST(CacheAdmission, ConcurrentTinyLFUStressUnderPressure) {
  // The sketch and the admission duel both run under the shard lock the
  // fetch already holds; this hammers them from 8 threads on a cache in
  // constant eviction pressure while another thread snapshots stats —
  // the TSan CI job runs this suite, so any racy shortcut fails loudly.
  Rng seed_rng(test::test_seed());
  Graph g = graph::barabasi_albert(2000, 2, 3, seed_rng);
  ShardedBallCache cache(g, 256u << 10, 4, CacheAdmission::kTinyLFU);
  constexpr int kThreads = 8;
  const int iters =
      static_cast<int>(test::stress_iters(200));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng local(test::test_seed() + 1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < iters; ++i) {
        // 32 hot keys plus a cold tail: both admission outcomes exercised.
        const bool hot = local.chance(0.6);
        const auto root = static_cast<graph::NodeId>(
            hot ? local.below(32) * 61 % 2000 : local.below(2000));
        const auto ball = cache.get(root, 2);
        ASSERT_EQ(ball->root_global(), root);
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread observer([&] {
    while (!done.load()) {
      const ShardedBallCache::Stats s = cache.stats();
      ASSERT_GE(s.hit_rate(), 0.0);
      ASSERT_LE(s.hit_rate(), 1.0);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  for (auto& t : threads) t.join();
  done.store(true);
  observer.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::size_t>(kThreads) *
                static_cast<std::size_t>(iters));
  EXPECT_LE(cache.bytes(), cache.byte_budget());
}

TEST(CacheAdmission, ClearResetsRejectCountsAndSketchKeepsWorking) {
  Graph g = graph::fixtures::cycle(600);
  const std::size_t ball = one_ball_bytes(g, 2);
  ShardedBallCache cache(g, 2 * ball + ball / 2, 1,
                         CacheAdmission::kTinyLFU);
  for (int round = 0; round < 3; ++round) {
    cache.get(0, 2);
    cache.get(100, 2);
  }
  cache.get(300, 2);  // rejected: cold vs hot residents
  EXPECT_EQ(cache.admission_rejects(), 1u);
  cache.clear();
  EXPECT_EQ(cache.admission_rejects(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  // Post-clear the cache still admits and serves normally.
  cache.get(0, 2);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(CacheAdmission, ClearResetsSketchSoTheNextWorkingSetCanWin) {
  // The regression: clear() used to leave the per-shard sketches
  // populated, so popularity from before the reset kept vetoing admission
  // of whatever the cache was reset FOR. After a clear, a new hot set
  // accessed a few times must be able to displace the old one.
  Graph g = graph::fixtures::cycle(600);
  const std::size_t ball = one_ball_bytes(g, 2);
  ShardedBallCache cache(g, 4 * ball + ball / 2, 1,
                         CacheAdmission::kTinyLFU);
  const std::vector<graph::NodeId> old_hot{0, 150, 300, 450};
  for (int round = 0; round < 6; ++round) {
    for (graph::NodeId root : old_hot) cache.get(root, 2);
  }

  cache.clear();
  // The old set drifts back in with a single access each (an empty cache
  // admits freely)…
  for (graph::NodeId root : old_hot) cache.get(root, 2);
  // …and the new hot set, hit repeatedly, must win its duels: its
  // post-clear estimates (up to 6) beat the old set's post-clear single
  // access. With the stale sketch the old estimates (~7) vetoed every one
  // of these admissions and the probe below missed across the board.
  const std::vector<graph::NodeId> new_hot{75, 225, 375, 525};
  for (int round = 0; round < 6; ++round) {
    for (graph::NodeId root : new_hot) cache.get(root, 2);
  }
  const ShardedBallCache::Stats before = cache.stats();
  for (graph::NodeId root : new_hot) cache.get(root, 2);
  const ShardedBallCache::Stats after = cache.stats();
  EXPECT_EQ(after.hits - before.hits, new_hot.size());
}

TEST(CacheAdmission, SketchInformedEvictionProtectsMidRecencyHotBall) {
  // Eviction order is frequency-informed under kTinyLFU: the coldest-by-
  // sketch entry within the LRU-tail scan window goes first, so a hot
  // ball that merely drifted to the cold end outlives one-shot entries
  // that are more recent. Under the old pure-LRU victim order the hot
  // ball H was the mandatory victim, so the candidate below stayed
  // rejected until it out-estimated H itself.
  Graph g = graph::fixtures::cycle(600);
  const std::size_t ball = one_ball_bytes(g, 2);
  ShardedBallCache cache(g, 4 * ball + ball / 2, 1,
                         CacheAdmission::kTinyLFU);
  const graph::NodeId hot = 0;
  for (int i = 0; i < 5; ++i) cache.get(hot, 2);  // estimate 5, resident
  // Three one-shot colds fill the budget; `hot` is now least recent.
  for (graph::NodeId cold : {100u, 200u, 300u}) cache.get(cold, 2);
  ASSERT_EQ(cache.entries(), 4u);

  // A new candidate with estimate 2: hotter than the one-shot colds,
  // colder than `hot`. Its second fetch must be admitted by evicting a
  // cold — not `hot`, and not rejected.
  cache.get(400, 2);  // estimate 1: ties the colds, rejected
  EXPECT_EQ(cache.admission_rejects(), 1u);
  cache.get(400, 2);  // estimate 2: beats the cold victim, admitted
  EXPECT_EQ(cache.evictions(), 1u);

  const ShardedBallCache::Stats before = cache.stats();
  cache.get(hot, 2);  // mid-recency hot ball survived the eviction
  cache.get(400, 2);  // and the admitted candidate is resident
  const ShardedBallCache::Stats after = cache.stats();
  EXPECT_EQ(after.hits - before.hits, 2u);
}

TEST(CacheAdmission, PinnedHandoffServesAdmissionRejectedBall) {
  // A root-prefetched cold ball loses its TinyLFU duel against hot
  // residents — but the pin keeps the BFS useful: the claiming demand
  // fetch is served from the side-table instead of re-extracting.
  Graph g = graph::fixtures::cycle(600);
  const std::size_t ball = one_ball_bytes(g, 2);
  ShardedBallCache cache(g, 2 * ball + ball / 2, 1,
                         CacheAdmission::kTinyLFU);
  for (int round = 0; round < 4; ++round) {
    cache.get(10, 2);
    cache.get(200, 2);
  }

  const ShardedBallCache::Fetch prefetched =
      cache.fetch(400, 2, ShardedBallCache::FetchKind::kPinnedRootPrefetch);
  EXPECT_FALSE(prefetched.hit);
  EXPECT_GT(cache.admission_rejects(), 0u);  // retention lost the duel
  EXPECT_EQ(cache.pins_installed(), 1u);     // …but the ball is pinned
  EXPECT_EQ(cache.pinned_entries(), 1u);

  const std::size_t misses_before = cache.stats().misses;
  const ShardedBallCache::Fetch claimed =
      cache.fetch(400, 2, ShardedBallCache::FetchKind::kDemand);
  EXPECT_TRUE(claimed.hit);
  EXPECT_TRUE(claimed.pinned);
  ASSERT_NE(claimed.ball, nullptr);
  EXPECT_EQ(claimed.ball->num_nodes(), prefetched.ball->num_nodes());
  EXPECT_EQ(cache.stats().misses, misses_before);  // no BFS re-paid
  EXPECT_EQ(cache.pin_hits(), 1u);
  EXPECT_EQ(cache.pinned_entries(), 0u);  // consumed by the claim
  EXPECT_EQ(cache.root_reextractions(), 0u);
}

TEST(CacheAdmission, DedupedPinnedRootPrefetchStillPins) {
  // A pinned root prefetch racing a stage-lookahead prefetch of the SAME
  // key must not lose its handoff: whichever thread wins the in-flight
  // claim, the completing extraction pins on the root prefetch's behalf
  // (pin_on_complete), so the demand claim is served without re-running
  // the BFS in every interleaving.
  Graph g = graph::fixtures::cycle(600);
  const std::size_t ball = one_ball_bytes(g, 2);
  ShardedBallCache cache(g, 2 * ball + ball / 2, 1,
                         CacheAdmission::kTinyLFU);
  for (int round = 0; round < 4; ++round) {
    cache.get(10, 2);  // hot residents: the cold key loses its duel
    cache.get(200, 2);
  }

  std::thread stage([&] {
    try {
      cache.fetch(400, 2, ShardedBallCache::FetchKind::kPrefetch);
    } catch (...) {
    }
  });
  std::thread root([&] {
    try {
      cache.fetch(400, 2, ShardedBallCache::FetchKind::kPinnedRootPrefetch);
    } catch (...) {
    }
  });
  stage.join();
  root.join();

  const std::size_t misses_before = cache.stats().misses;
  const ShardedBallCache::Fetch claimed =
      cache.fetch(400, 2, ShardedBallCache::FetchKind::kDemand);
  EXPECT_TRUE(claimed.hit);
  EXPECT_EQ(cache.stats().misses, misses_before);  // no demand BFS
  EXPECT_EQ(cache.root_reextractions(), 0u);
}

TEST(CacheAdmission, UnpinnedRootPrefetchIsReextractedAndCounted) {
  // The PR 4 failure mode, now at least accounted for: without pinning, a
  // served-but-rejected root prefetch leaves nothing behind, and the
  // claiming worker pays the BFS again — root_reextractions counts it.
  Graph g = graph::fixtures::cycle(600);
  const std::size_t ball = one_ball_bytes(g, 2);
  ShardedBallCache cache(g, 2 * ball + ball / 2, 1,
                         CacheAdmission::kTinyLFU);
  for (int round = 0; round < 4; ++round) {
    cache.get(10, 2);
    cache.get(200, 2);
  }

  const ShardedBallCache::Fetch prefetched =
      cache.fetch(400, 2, ShardedBallCache::FetchKind::kRootPrefetch);
  EXPECT_FALSE(prefetched.hit);
  EXPECT_EQ(cache.pins_installed(), 0u);  // unpinned kind never pins

  const std::size_t misses_before = cache.stats().misses;
  const ShardedBallCache::Fetch claimed =
      cache.fetch(400, 2, ShardedBallCache::FetchKind::kDemand);
  EXPECT_FALSE(claimed.hit);  // the BFS ran again on the demand path
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
  EXPECT_EQ(cache.root_reextractions(), 1u);
}

}  // namespace
}  // namespace meloppr::core

int main(int argc, char** argv) {
  return meloppr::test::run_all_tests(argc, argv);
}
