// BallCache + engine integration tests.
#include "core/ball_cache.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace meloppr::core {
namespace {

using graph::Graph;

TEST(BallCache, HitsOnRepeatedKeys) {
  Graph g = graph::fixtures::cycle(50);
  BallCache cache(g, 1 << 20);
  const auto& first = cache.get(5, 3);
  EXPECT_EQ(cache.misses(), 1u);
  const auto& second = cache.get(5, 3);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(&first, &second);  // same cached object
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(BallCache, DifferentRadiusIsDifferentEntry) {
  Graph g = graph::fixtures::cycle(50);
  BallCache cache(g, 1 << 20);
  cache.get(5, 2);
  cache.get(5, 3);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.entries(), 2u);
}

std::size_t one_ball_bytes(const Graph& g) {
  BallCache probe(g, 1 << 20);
  probe.get(0, 2);
  return probe.bytes();  // every radius-2 cycle ball is the same size
}

TEST(BallCache, EvictsLruUnderPressure) {
  Graph g = graph::fixtures::cycle(200);
  const std::size_t one_ball = one_ball_bytes(g);
  ASSERT_GT(one_ball, 0u);
  BallCache cache(g, 3 * one_ball + one_ball / 2);  // room for exactly 3
  cache.get(0, 2);
  cache.get(10, 2);
  cache.get(20, 2);
  EXPECT_EQ(cache.entries(), 3u);
  cache.get(30, 2);  // evicts node 0's ball (the LRU)
  cache.get(0, 2);   // and this is a miss again
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 5u);
  EXPECT_LE(cache.bytes(), cache.byte_budget());
}

TEST(BallCache, RecentUseProtectsFromEviction) {
  Graph g = graph::fixtures::cycle(200);
  const std::size_t one_ball = one_ball_bytes(g);
  BallCache cache(g, 3 * one_ball + one_ball / 2);
  cache.get(0, 2);
  cache.get(10, 2);
  cache.get(20, 2);
  cache.get(0, 2);   // refresh node 0 to MRU
  cache.get(30, 2);  // evicts node 10's ball, not node 0's
  cache.get(0, 2);   // still cached
  EXPECT_EQ(cache.hits(), 2u);
  cache.get(10, 2);  // the true victim misses
  EXPECT_EQ(cache.misses(), 5u);
}

TEST(BallCache, OversizedBallServedButNotRetained) {
  Graph g = graph::fixtures::complete(64);
  BallCache cache(g, 128);  // far below any ball's footprint
  const auto& ball = cache.get(0, 1);
  EXPECT_EQ(ball.num_nodes(), 64u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(BallCache, TracksExtractionSeconds) {
  Graph g = graph::fixtures::cycle(100);
  BallCache cache(g, 1 << 20);
  cache.get(3, 3);
  const double after_miss = cache.extraction_seconds();
  EXPECT_GT(after_miss, 0.0);
  cache.get(3, 3);
  EXPECT_DOUBLE_EQ(cache.extraction_seconds(), after_miss);  // hit is free
}

TEST(BallCache, ZeroBudgetRejected) {
  Graph g = graph::fixtures::path(4);
  EXPECT_THROW(BallCache(g, 0), std::invalid_argument);
}

TEST(BallCache, ClearResetsEverything) {
  Graph g = graph::fixtures::cycle(50);
  BallCache cache(g, 1 << 20);
  cache.get(1, 2);
  cache.get(1, 2);
  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(BallCacheEngine, CachedQueriesMatchUncached) {
  Rng rng(61);
  Graph g = graph::barabasi_albert(800, 2, 2, rng);
  MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = 20;
  cfg.selection = Selection::top_count(10);
  Engine engine(g, cfg);

  QueryResult plain = engine.query(9);

  BallCache cache(g, 64u << 20);
  engine.set_ball_cache(&cache);
  QueryResult cached_cold = engine.query(9);
  QueryResult cached_warm = engine.query(9);
  engine.set_ball_cache(nullptr);

  ASSERT_EQ(plain.top.size(), cached_warm.top.size());
  for (std::size_t i = 0; i < plain.top.size(); ++i) {
    EXPECT_EQ(plain.top[i].node, cached_warm.top[i].node);
    EXPECT_NEAR(plain.top[i].score, cached_warm.top[i].score, 1e-12);
  }
  EXPECT_GT(cache.hit_rate(), 0.4);  // the repeat query hits everywhere
  // Warm query spends (almost) nothing on BFS.
  EXPECT_LT(cached_warm.stats.bfs_seconds(),
            cached_cold.stats.bfs_seconds() + 1e-9);
}

TEST(BallCacheEngine, CrossSeedSharingOfStage2Balls) {
  // Different seeds select overlapping next-stage nodes; the cache should
  // see real hits across a query stream.
  Rng rng(62);
  Graph g = graph::barabasi_albert(1500, 2, 2, rng);
  MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = 20;
  cfg.selection = Selection::top_count(20);
  Engine engine(g, cfg);
  BallCache cache(g, 256u << 20);
  engine.set_ball_cache(&cache);
  for (graph::NodeId seed : {3u, 17u, 99u, 250u, 777u, 1200u}) {
    (void)engine.query(seed);
  }
  engine.set_ball_cache(nullptr);
  // Hubs are selected by many seeds — hits must occur.
  EXPECT_GT(cache.hits(), 10u);
}

}  // namespace
}  // namespace meloppr::core
