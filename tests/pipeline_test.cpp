// QueryPipeline behaviors beyond score equivalence (covered by
// scheduler_equivalence_test): backend sharing vs cloning, farm
// integration, makespan accounting, merged memory metering, error
// propagation, and config validation.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <thread>

#include "graph/generators.hpp"
#include "hw/farm.hpp"
#include "util/rng.hpp"

namespace meloppr::core {
namespace {

using graph::Graph;

MelopprConfig small_config() {
  MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = 20;
  cfg.selection = Selection::top_count(12);
  return cfg;
}

hw::FpgaFarm make_farm(std::size_t devices) {
  hw::AcceleratorConfig cfg;
  cfg.parallelism = 4;
  return hw::FpgaFarm(devices, cfg, hw::Quantizer(0.85, 10, 50'000'000));
}

TEST(QueryPipeline, ConfigValidation) {
  Rng rng(81);
  Graph g = graph::barabasi_albert(200, 2, 2, rng);
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig bad;
  bad.aggregator_stripes = 0;
  EXPECT_THROW(QueryPipeline(engine, backend, bad), std::invalid_argument);
}

TEST(QueryPipeline, ResolvedThreadsDefaultsPositive) {
  PipelineConfig cfg;
  EXPECT_GE(cfg.resolved_threads(), 1u);
  cfg.threads = 3;
  EXPECT_EQ(cfg.resolved_threads(), 3u);
}

TEST(QueryPipeline, SharesThreadSafeBackendsClonesOthers) {
  // The farm advertises internal dispatch; the single FPGA backend does not
  // (its cycle counters are mutable state).
  EXPECT_TRUE(CpuBackend(0.85).thread_safe());
  EXPECT_TRUE(make_farm(2).thread_safe());
  hw::AcceleratorConfig acfg;
  hw::FpgaBackend single{hw::Accelerator(acfg, hw::Quantizer(0.85, 10, 1000))};
  EXPECT_FALSE(single.thread_safe());

  // Clones share no counters with the original.
  auto clone = single.clone();
  EXPECT_EQ(clone->name(), single.name());
}

TEST(QueryPipeline, FarmReceivesEveryDiffusionOnce) {
  Rng rng(82);
  Graph g = graph::barabasi_albert(600, 2, 2, rng);
  Engine engine(g, small_config());
  hw::FpgaFarm farm = make_farm(4);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, farm, pcfg);

  const QueryResult r = pipeline.query(9);
  EXPECT_FALSE(r.top.empty());
  // Every ball of the query was dispatched to the shared farm exactly once.
  EXPECT_EQ(farm.runs(), r.stats.total_balls());
  EXPECT_GE(farm.imbalance(), 1.0 - 1e-9);
}

TEST(QueryPipeline, FarmNumericsMatchSerialEngine) {
  Rng rng(83);
  Graph g = graph::barabasi_albert(500, 2, 3, rng);
  Engine engine(g, small_config());

  // Serial reference through one simulated FPGA (same quantizer as the
  // farm's devices — farm numerics are device-count independent).
  hw::AcceleratorConfig acfg;
  acfg.parallelism = 4;
  hw::FpgaBackend single{
      hw::Accelerator(acfg, hw::Quantizer(0.85, 10, 50'000'000))};
  ExactAggregator agg;
  const QueryResult serial = engine.query(23, single, agg);

  hw::FpgaFarm farm = make_farm(3);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, farm, pcfg);
  const QueryResult parallel = pipeline.query(23);

  // Compare as node→score maps: per-node sums see the same addends in a
  // different order, so exact serial ties can break differently in the
  // positional ranking while every score still matches within 1e-12.
  ASSERT_EQ(parallel.top.size(), serial.top.size());
  std::map<graph::NodeId, double> want;
  for (const auto& sn : serial.top) want.emplace(sn.node, sn.score);
  std::size_t matched = 0;
  for (const auto& sn : parallel.top) {
    const auto it = want.find(sn.node);
    if (it == want.end()) continue;  // a tie rotated the tail of the list
    ++matched;
    EXPECT_NEAR(sn.score, it->second, 1e-12) << "node " << sn.node;
  }
  EXPECT_GE(matched + 2, serial.top.size());  // at most the tie boundary moves
}

TEST(QueryPipeline, MakespanAccountingIsCoherent) {
  Rng rng(84);
  Graph g = graph::barabasi_albert(800, 2, 2, rng);
  MelopprConfig cfg = small_config();
  cfg.selection = Selection::top_count(24);
  Engine engine(g, cfg);
  hw::FpgaFarm farm = make_farm(4);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, farm, pcfg);

  const QueryResult r = pipeline.query(11);
  // Popcount semantics: distinct workers that actually executed a task,
  // not the pool size — between 1 (one worker drained every frontier) and
  // the pool's 4.
  EXPECT_GE(r.stats.threads_used, 1u);
  EXPECT_LE(r.stats.threads_used, 4u);
  EXPECT_GT(r.stats.diffusion_serial_seconds, 0.0);
  // The makespan can never exceed the serial sum, and the speedup is
  // bounded by the worker count.
  EXPECT_LE(r.stats.diffusion_makespan_seconds,
            r.stats.diffusion_serial_seconds + 1e-12);
  EXPECT_GE(r.stats.parallel_speedup(), 1.0 - 1e-9);
  EXPECT_LE(r.stats.parallel_speedup(), 4.0 + 1e-9);
  // 25 independent stage-2 balls across 4 workers usually overlap, but on
  // a single-core or oversubscribed runner one worker may legitimately
  // drain the whole frontier — equality is then correct, not a bug.
  EXPECT_LE(r.stats.diffusion_makespan_seconds,
            r.stats.diffusion_serial_seconds);
}

TEST(QueryPipeline, MergedMemoryPeakIsHonest) {
  Rng rng(85);
  Graph g = graph::barabasi_albert(800, 2, 2, rng);
  Engine engine(g, small_config());
  CpuBackend backend(0.85);

  PipelineConfig pcfg;
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, backend, pcfg);
  const QueryResult parallel = pipeline.query(17);
  const QueryResult serial = engine.query(17);

  // The merged per-thread peak can only exceed the serial peak (T balls in
  // flight instead of one), and must include the aggregator.
  EXPECT_GT(parallel.stats.peak_bytes, 0u);
  EXPECT_GE(parallel.stats.peak_bytes, parallel.stats.aggregator_bytes);
  EXPECT_GE(parallel.stats.peak_bytes + 1024, serial.stats.aggregator_bytes);
}

TEST(QueryPipeline, BatchHandlesManyMoreQueriesThanWorkers) {
  Rng rng(86);
  Graph g = graph::barabasi_albert(400, 2, 2, rng);
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 2;
  QueryPipeline pipeline(engine, backend, pcfg);

  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 40; ++s) seeds.push_back(s * 7 % 400);
  const std::vector<QueryResult> results = pipeline.query_batch(seeds);
  ASSERT_EQ(results.size(), seeds.size());
  for (const QueryResult& r : results) {
    EXPECT_FALSE(r.top.empty());
    EXPECT_GT(r.stats.total_balls(), 0u);
  }
}

TEST(QueryPipeline, WorkerExceptionsPropagateToCaller) {
  Rng rng(87);
  Graph g = graph::barabasi_albert(200, 2, 2, rng);
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 2;
  QueryPipeline pipeline(engine, backend, pcfg);

  // An out-of-range seed fails inside a worker's BFS; the pipeline must
  // surface it instead of hanging or swallowing it.
  const std::vector<graph::NodeId> seeds{1, 2, 5'000'000};
  EXPECT_ANY_THROW(pipeline.query_batch(seeds));
  // The pool survives a failed dispatch and keeps serving.
  const std::vector<graph::NodeId> good{1, 2, 3};
  EXPECT_EQ(pipeline.query_batch(good).size(), 3u);
}

TEST(QueryPipeline, RejectsBallCacheInParallelMode) {
  Rng rng(88);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  Engine engine(g, small_config());
  CpuBackend backend(0.85);
  BallCache cache(g, 1u << 20);
  engine.set_ball_cache(&cache);

  PipelineConfig pcfg;
  pcfg.threads = 4;
  QueryPipeline pipeline(engine, backend, pcfg);
  EXPECT_THROW(pipeline.query(5), InvariantViolation);
  engine.set_ball_cache(nullptr);
  EXPECT_NO_THROW(pipeline.query(5));
}

TEST(StripedAggregator, ExactSumsAndValidation) {
  EXPECT_THROW(StripedAggregator(0), std::invalid_argument);
  StripedAggregator agg(4);
  agg.add(1, 0.5);
  agg.add(1, 0.25);
  agg.add(5, 1.0);
  agg.add(5, -1.0);
  EXPECT_EQ(agg.entries(), 2u);
  const auto top = agg.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 1u);
  EXPECT_DOUBLE_EQ(top[0].score, 0.75);
  EXPECT_GT(agg.bytes(), 0u);
  agg.clear();
  EXPECT_EQ(agg.entries(), 0u);
}

TEST(StripedAggregator, ConcurrentAddsAreLossless) {
  StripedAggregator agg(8);
  constexpr int kThreads = 8;
  constexpr int kAdds = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&agg] {
      for (int i = 0; i < kAdds; ++i) {
        agg.add(static_cast<graph::NodeId>(i % 97), 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(agg.entries(), 97u);
  double total = 0.0;
  for (const auto& sn : agg.top(97)) total += sn.score;
  // Integer-valued adds: the sum is exact, so losses would be visible.
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kThreads) * kAdds);
}

}  // namespace
}  // namespace meloppr::core
