// FpgaBackend: the simulated PL plugged into the engine as a backend.
#include "hw/host.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/memory_model.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "ppr/local_ppr.hpp"
#include "util/rng.hpp"

namespace meloppr::hw {
namespace {

using graph::Graph;

FpgaBackend make_backend(unsigned p, std::uint64_t max_value = 50'000'000) {
  AcceleratorConfig cfg;
  cfg.parallelism = p;
  return FpgaBackend(Accelerator(cfg, Quantizer(0.85, 10, max_value)));
}

TEST(FpgaBackend, NameEncodesParallelism) {
  EXPECT_EQ(make_backend(16).name(), "fpga(P=16)");
}

TEST(FpgaBackend, RunMatchesCpuBackendApproximately) {
  Rng rng(91);
  Graph g = graph::barabasi_albert(400, 2, 2, rng);
  graph::Subgraph ball = graph::extract_ball(g, 7, 3);

  core::CpuBackend cpu(0.85);
  FpgaBackend fpga = make_backend(8);
  core::BackendResult rc = cpu.run(ball, 1.0, 3);
  core::BackendResult rf = fpga.run(ball, 1.0, 3);

  ASSERT_EQ(rc.accumulated.size(), rf.accumulated.size());
  for (std::size_t v = 0; v < rc.accumulated.size(); ++v) {
    // Tolerance covers integer truncation plus the α ≈ α_p/2^q rounding.
    EXPECT_NEAR(rf.accumulated[v], rc.accumulated[v], 1e-3);
    EXPECT_NEAR(rf.inflight[v], rc.inflight[v], 1e-3);
  }
  EXPECT_GT(rf.compute_seconds, 0.0);
  EXPECT_GT(rf.transfer_seconds, 0.0);
}

TEST(FpgaBackend, ZeroQuantizedMassShortCircuits) {
  Rng rng(92);
  Graph g = graph::barabasi_albert(200, 2, 2, rng);
  graph::Subgraph ball = graph::extract_ball(g, 3, 3);
  FpgaBackend fpga = make_backend(4, /*max_value=*/1000);
  core::BackendResult r = fpga.run(ball, 1e-9, 3);
  for (double v : r.accumulated) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(r.compute_seconds, 0.0);
  EXPECT_EQ(fpga.runs(), 0u);  // not dispatched
}

TEST(FpgaBackend, CycleCountersAccumulate) {
  Rng rng(93);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  graph::Subgraph ball = graph::extract_ball(g, 5, 3);
  FpgaBackend fpga = make_backend(8);
  fpga.run(ball, 1.0, 3);
  const auto after_one = fpga.total_cycles();
  fpga.run(ball, 1.0, 3);
  const auto after_two = fpga.total_cycles();
  EXPECT_EQ(fpga.runs(), 2u);
  EXPECT_EQ(after_two.diffusion, 2 * after_one.diffusion);
  // Double buffering: the second ball's DMA hides behind the first ball's
  // compute, so visible data movement grows by at most one ball's worth.
  EXPECT_LE(after_two.data_movement, 2 * after_one.data_movement);
  fpga.reset_counters();
  EXPECT_EQ(fpga.runs(), 0u);
  EXPECT_EQ(fpga.total_cycles().total(), 0u);
}

TEST(FpgaBackend, DmaOverlapsBehindPreviousCompute) {
  Rng rng(96);
  Graph g = graph::barabasi_albert(2000, 3, 3, rng);
  graph::Subgraph ball = graph::extract_ball(g, 5, 3);
  FpgaBackend fpga = make_backend(1);  // P=1: compute far exceeds DMA
  core::BackendResult first = fpga.run(ball, 1.0, 3);
  EXPECT_GT(first.transfer_seconds, 0.0);  // nothing to hide behind yet
  core::BackendResult second = fpga.run(ball, 1.0, 3);
  EXPECT_DOUBLE_EQ(second.transfer_seconds, 0.0);  // fully hidden
}

TEST(FpgaBackend, WorkingBytesIsPaperBramFormula) {
  FpgaBackend fpga = make_backend(4);
  EXPECT_EQ(fpga.working_bytes(100, 300),
            core::fpga_bram_bytes(100, 300));
}

TEST(FpgaBackend, EndToEndEngineQueryPrecision) {
  // Full co-designed pipeline: CPU BFS + simulated-FPGA diffusion + top-c·k
  // aggregation, compared against the exact CPU baseline. With all nodes
  // selected, precision loss comes only from quantization and the fixed
  // table; the paper reports <0.001% score loss for d = max degree.
  Rng rng(94);
  Graph g = graph::barabasi_albert(800, 2, 2, rng);
  const graph::NodeId seed = 9;
  const std::size_t k = 20;

  ppr::LocalPprResult base = ppr::local_ppr(g, seed, {0.85, 6, k});

  core::MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = k;
  cfg.selection = core::Selection::all();
  core::Engine engine(g, cfg);

  FpgaBackend fpga = make_backend(16, /*max_value=*/500'000'000);
  core::TopCKAggregator table(10 * k);
  core::QueryResult r = engine.query(seed, fpga, table);

  const double prec = ppr::precision_at_k(base.top, r.top, k);
  EXPECT_GE(prec, 0.9);
  EXPECT_EQ(fpga.saturated_runs(), 0u);
  EXPECT_GT(r.stats.transfer_seconds(), 0.0);
  EXPECT_GT(r.stats.compute_seconds(), 0.0);
}

TEST(FpgaBackend, SimulatedTimeBeatsCpuOnLargeBalls) {
  // The point of the accelerator: at P=16 and 100 MHz, per-ball diffusion
  // time should be well below single-thread CPU wall time for decently
  // sized balls. (Both numbers are on our own substrate — ratios only.)
  Rng rng(95);
  Graph g = graph::barabasi_albert(20000, 3, 3, rng);
  graph::Subgraph ball = graph::extract_ball(g, 13, 3);
  ASSERT_GT(ball.num_nodes(), 500u);

  core::CpuBackend cpu(0.85);
  FpgaBackend fpga = make_backend(16);
  // Warm the cache so the CPU timing is not dominated by first-touch.
  cpu.run(ball, 1.0, 3);
  core::BackendResult rc = cpu.run(ball, 1.0, 3);
  core::BackendResult rf = fpga.run(ball, 1.0, 3);
  EXPECT_LT(rf.compute_seconds, rc.compute_seconds * 2.0);
}

}  // namespace
}  // namespace meloppr::hw
