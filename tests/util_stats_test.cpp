#include "util/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace meloppr {
namespace {

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, MeanAndVarianceMatchClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: Σ(x−5)² = 32, n−1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyThrowsOnRead) {
  RunningStats s;
  EXPECT_THROW((void)s.mean(), InvariantViolation);
  EXPECT_THROW((void)s.min(), InvariantViolation);
  EXPECT_THROW((void)s.max(), InvariantViolation);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 1u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.0);
}

TEST(Samples, GeomeanOfRatios) {
  Samples s({2.0, 8.0});
  EXPECT_DOUBLE_EQ(s.geomean(), 4.0);
}

TEST(Samples, GeomeanRejectsNonPositive) {
  Samples s({2.0, 0.0});
  EXPECT_THROW((void)s.geomean(), InvariantViolation);
}

TEST(Samples, PercentileInterpolation) {
  Samples s({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 25.0);
  EXPECT_NEAR(s.percentile(25.0), 17.5, 1e-12);
}

TEST(Samples, PercentileCacheInvalidatedByAdd) {
  // percentile() caches the sorted order; add() must invalidate it or the
  // second read reports quantiles of the stale set.
  Samples s({10.0, 20.0});
  EXPECT_DOUBLE_EQ(s.median(), 15.0);  // primes the cache
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  s.add(40.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
}

TEST(Samples, PercentileSingleElement) {
  Samples s({7.0});
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 7.0);
}

TEST(Samples, BasicMoments) {
  Samples s({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
}

TEST(LogHistogram, BinsAndFractions) {
  LogHistogram h(-4.0, 0.0, 4);  // decades: [-4,-3), [-3,-2), [-2,-1), [-1,0]
  h.add(0.5);      // log10 ≈ -0.3 → last bin
  h.add(0.05);     // -1.3 → bin 2
  h.add(0.005);    // -2.3 → bin 1
  h.add(0.0005);   // -3.3 → bin 0
  h.add(0.0);      // clamps to first bin
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction_below(-3.0), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.0), 1.0);
}

TEST(LogHistogram, AsciiRendersEveryBin) {
  LogHistogram h(-2.0, 0.0, 2);
  h.add(0.5);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

}  // namespace
}  // namespace meloppr
