// Tests for table_printer, env knobs, timers and the assertion macros.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "util/assert.hpp"
#include "util/env.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

namespace meloppr {
namespace {

TEST(TablePrinter, AsciiAlignsColumns) {
  TablePrinter t({"Graph", "Memory"});
  t.add_row({"G1", "0.005"});
  t.add_row({"G2-long-name", "12"});
  const std::string out = t.ascii();
  EXPECT_NE(out.find("G2-long-name"), std::string::npos);
  EXPECT_NE(out.find("| Graph"), std::string::npos);
  // Every line has the same width.
  std::size_t width = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TablePrinter, RowArityMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantViolation);
}

TEST(TablePrinter, CsvEscapesSpecials) {
  TablePrinter t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TablePrinter, SeparatorSkippedInCsv) {
  TablePrinter t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
  const std::string csv = t.csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
}

TEST(Formatting, Helpers) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(13.058), "13.06x");
  EXPECT_EQ(fmt_percent(0.738), "73.8%");
  EXPECT_EQ(fmt_range(0.005, 1.262), "0.005 ~ 1.262");
}

TEST(Env, IntFallbacks) {
  ::unsetenv("MELOPPR_TEST_INT");
  EXPECT_EQ(env_int("MELOPPR_TEST_INT", 7), 7);
  ::setenv("MELOPPR_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("MELOPPR_TEST_INT", 7), 42);
  ::setenv("MELOPPR_TEST_INT", "garbage", 1);
  EXPECT_EQ(env_int("MELOPPR_TEST_INT", 7), 7);
  ::unsetenv("MELOPPR_TEST_INT");
}

TEST(Env, DoubleAndFlag) {
  ::setenv("MELOPPR_TEST_D", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("MELOPPR_TEST_D", 1.0), 0.25);
  ::unsetenv("MELOPPR_TEST_D");
  EXPECT_DOUBLE_EQ(env_double("MELOPPR_TEST_D", 1.0), 1.0);

  ::setenv("MELOPPR_TEST_F", "off", 1);
  EXPECT_FALSE(env_flag("MELOPPR_TEST_F", true));
  ::setenv("MELOPPR_TEST_F", "1", 1);
  EXPECT_TRUE(env_flag("MELOPPR_TEST_F", false));
  ::unsetenv("MELOPPR_TEST_F");
  EXPECT_TRUE(env_flag("MELOPPR_TEST_F", true));
}

TEST(Env, BenchSeedCount) {
  ::unsetenv("MELOPPR_SEEDS");
  EXPECT_EQ(bench_seed_count(25), 25u);
  ::setenv("MELOPPR_SEEDS", "100", 1);
  EXPECT_EQ(bench_seed_count(25), 100u);
  ::setenv("MELOPPR_SEEDS", "-3", 1);
  EXPECT_EQ(bench_seed_count(25), 25u);
  ::unsetenv("MELOPPR_SEEDS");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.elapsed_ms(), 9.0);
  EXPECT_LT(t.elapsed_seconds(), 5.0);
  t.restart();
  EXPECT_LT(t.elapsed_ms(), 9.0);
}

TEST(AccumulatingTimer, SumsScopes) {
  AccumulatingTimer acc;
  {
    auto scope = acc.measure();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    auto scope = acc.measure();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(acc.total_ms(), 8.0);
  acc.add_seconds(1.0);
  EXPECT_GE(acc.total_seconds(), 1.0);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 0.0);
}

TEST(Assert, CheckThrowsWithContext) {
  try {
    MELO_CHECK_MSG(1 == 2, "custom context " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom context 42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Assert, PassingCheckIsSilent) {
  EXPECT_NO_THROW(MELO_CHECK(2 + 2 == 4));
}

}  // namespace
}  // namespace meloppr
