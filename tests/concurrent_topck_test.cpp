// The concurrent bounded top-c·k aggregation stack: unit behavior of
// ConcurrentTopCKAggregator, randomized property tests of the eviction
// bound (for both the serial and the concurrent bounded tables),
// multithreaded hammer tests (the ThreadSanitizer CI targets), bounded
// recall degradation vs c, and the pipeline-level acceptance contract —
// query_batch in bounded mode is bit-identical to the serial engine with
// a TopCKAggregator at every thread count, including under forced
// stealing skew.
//
// Randomized tests derive from test_support.hpp's --seed / MELOPPR_TEST_SEED
// (fixed default; the reproduction line prints on failure).
#include "core/concurrent_topck.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/sharded_ball_cache.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace meloppr::core {
namespace {

using graph::Graph;

MelopprConfig small_config(AggregationMode mode = AggregationMode::kExact,
                           std::size_t c = 10) {
  MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = 20;
  cfg.selection = Selection::top_count(12);
  cfg.aggregation = mode;
  cfg.topck_c = c;
  return cfg;
}

void expect_bit_identical(const QueryResult& want, const QueryResult& got) {
  ASSERT_EQ(want.top.size(), got.top.size());
  for (std::size_t i = 0; i < want.top.size(); ++i) {
    EXPECT_EQ(want.top[i].node, got.top[i].node) << "rank " << i;
    // EXPECT_EQ on doubles: bit-identical is the contract, not "near".
    EXPECT_EQ(want.top[i].score, got.top[i].score) << "rank " << i;
  }
}

// ---------------------------------------------------------------------------
// Unit behavior
// ---------------------------------------------------------------------------

TEST(ConcurrentTopCK, RejectsZeroCapacityAndClampsShards) {
  EXPECT_THROW(ConcurrentTopCKAggregator(0), std::invalid_argument);
  // More shards than capacity would strand empty sub-tables; clamped.
  ConcurrentTopCKAggregator tiny(3, 64);
  EXPECT_LE(tiny.shard_count(), 3u);
  EXPECT_GE(tiny.shard_count(), 1u);
  EXPECT_EQ(tiny.capacity(), 3u);
}

TEST(ConcurrentTopCK, AgreesWithExactUnderCapacity) {
  Rng rng(meloppr::test::test_seed());
  ConcurrentTopCKAggregator table(2048, 4);
  ExactAggregator exact;
  for (int i = 0; i < 6000; ++i) {
    const auto node = static_cast<graph::NodeId>(rng.below(500));
    const double delta = rng.uniform(-0.002, 0.01);
    table.add(node, delta);
    exact.add(node, delta);
  }
  EXPECT_EQ(table.evictions(), 0u);
  EXPECT_EQ(table.entries(), exact.entries());
  EXPECT_GT(table.fast_path_adds(), 0u);  // resident updates hit fast path
  const auto a = table.top(30);
  const auto b = exact.top(30);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << "rank " << i;
    EXPECT_NEAR(a[i].score, b[i].score, 1e-12) << "rank " << i;
  }
}

TEST(ConcurrentTopCK, EntriesNeverExceedCapacityAndEvictionsCount) {
  Rng rng(meloppr::test::test_seed());
  ConcurrentTopCKAggregator table(64, 4);
  for (int i = 0; i < 5000; ++i) {
    table.add(static_cast<graph::NodeId>(rng.below(2000)),
              rng.uniform(0.0, 1.0));
    ASSERT_LE(table.entries(), 64u);
  }
  EXPECT_EQ(table.entries(), 64u);
  EXPECT_GT(table.evictions(), 0u);
  EXPECT_GT(table.eviction_bound(), 0.0);
  // Fixed BRAM footprint regardless of churn.
  EXPECT_EQ(table.bytes(), 64u * 8u);
}

TEST(ConcurrentTopCK, ClearResetsEverything) {
  ConcurrentTopCKAggregator table(2, 1);
  table.add(1, 0.1);
  table.add(2, 0.2);
  table.add(3, 0.3);  // evicts
  EXPECT_GT(table.evictions(), 0u);
  table.clear();
  EXPECT_EQ(table.entries(), 0u);
  EXPECT_EQ(table.evictions(), 0u);
  EXPECT_EQ(table.fast_path_adds(), 0u);
  EXPECT_EQ(table.eviction_bound(),
            -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(table.top(5).empty());
  table.add(7, 0.7);  // usable after clear
  EXPECT_EQ(table.entries(), 1u);
}

TEST(ConcurrentTopCK, NegativeDeltasUpdateInPlace) {
  ConcurrentTopCKAggregator table(4, 1);
  table.add(1, 0.5);
  table.add(1, -0.2);  // Eq. 8 correction path
  const auto top = table.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].node, 1u);
  EXPECT_NEAR(top[0].score, 0.3, 1e-15);
}

TEST(ConcurrentTopCK, RejectsNegativeMargin) {
  EXPECT_THROW(ConcurrentTopCKAggregator(4, 1, -0.5),
               std::invalid_argument);
}

TEST(ConcurrentTopCK, AdmissionMarginDropsNearBoundaryChallengers) {
  // Same ε hysteresis as the serial table, applied per shard (one shard
  // here so the boundary is global and the test deterministic).
  ConcurrentTopCKAggregator margin(4, 1, 0.5);
  for (graph::NodeId v = 0; v < 4; ++v) {
    margin.add(v, 1.0 + static_cast<double>(v));  // scores 1..4
  }
  margin.add(10, 1.2);  // inside 1.0·(1+ε) = 1.5 → dropped
  EXPECT_EQ(margin.evictions(), 0u);
  EXPECT_EQ(margin.margin_drops(), 1u);
  EXPECT_GE(margin.eviction_bound(), 1.2);  // certificate records the drop
  margin.add(11, 1.6);  // beats the margin → evicts
  EXPECT_EQ(margin.evictions(), 1u);
  EXPECT_EQ(margin.entries(), 4u);
  margin.clear();
  EXPECT_EQ(margin.margin_drops(), 0u);
}

// ---------------------------------------------------------------------------
// Property: the eviction bound is a fidelity certificate. For streams with
// one contribution per node, any node whose contribution exceeds
// eviction_bound() is guaranteed resident with its exact score — so the
// bounded top-k equals the exact top-k whenever the true k-th score clears
// the bound. Checked for the serial table (global eviction boundary) and
// the concurrent table (per-shard boundary) over randomized streams.
// ---------------------------------------------------------------------------

template <typename Table>
void check_bound_property(Table& table, Rng& rng, std::size_t nodes,
                          std::size_t k) {
  std::vector<std::pair<graph::NodeId, double>> stream;
  stream.reserve(nodes);
  for (graph::NodeId v = 0; v < nodes; ++v) {
    stream.push_back({v, rng.uniform(1e-6, 1.0)});
  }
  // Shuffle so admission order is uncorrelated with score.
  for (std::size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.below(i)]);
  }
  ExactAggregator exact;
  for (const auto& [node, delta] : stream) {
    table.add(node, delta);
    exact.add(node, delta);
  }
  const double bound = table.eviction_bound();

  // Every node above the bound is resident with its exact score.
  std::map<graph::NodeId, double> resident;
  for (const auto& sn : table.top(table.capacity())) {
    resident.emplace(sn.node, sn.score);
  }
  EXPECT_LE(resident.size(), table.capacity());
  for (const auto& [node, delta] : stream) {
    if (delta > bound) {
      const auto it = resident.find(node);
      ASSERT_NE(it, resident.end())
          << "node " << node << " with score " << delta
          << " above eviction bound " << bound << " was displaced";
      EXPECT_EQ(it->second, delta);
    }
  }

  // Top-k agreement whenever the true k-th score clears the bound.
  const auto exact_top = exact.top(k);
  if (!exact_top.empty() && exact_top.back().score > bound) {
    const auto got = table.top(k);
    ASSERT_EQ(got.size(), exact_top.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].node, exact_top[i].node) << "rank " << i;
      EXPECT_EQ(got[i].score, exact_top[i].score) << "rank " << i;
    }
  }
}

TEST(TopCKProperty, SerialTableBoundCertifiesTopK) {
  Rng base(meloppr::test::test_seed());
  const std::size_t rounds = meloppr::test::stress_iters(40);
  for (std::size_t round = 0; round < rounds; ++round) {
    Rng rng = base.fork(round);
    const std::size_t capacity = 8 + rng.below(120);
    TopCKAggregator table(capacity);
    check_bound_property(table, rng, capacity + rng.below(4 * capacity),
                         1 + rng.below(capacity));
  }
}

TEST(TopCKProperty, ConcurrentTableBoundCertifiesTopK) {
  Rng base(meloppr::test::test_seed() ^ 0xc0ffee);
  const std::size_t rounds = meloppr::test::stress_iters(40);
  for (std::size_t round = 0; round < rounds; ++round) {
    Rng rng = base.fork(round);
    const std::size_t capacity = 8 + rng.below(120);
    ConcurrentTopCKAggregator table(capacity, 1 + rng.below(8));
    check_bound_property(table, rng, capacity + rng.below(4 * capacity),
                         1 + rng.below(capacity));
  }
}

// ---------------------------------------------------------------------------
// Concurrency (the ThreadSanitizer CI targets)
// ---------------------------------------------------------------------------

TEST(ConcurrentTopCK, ConcurrentResidentUpdatesAreLossless) {
  // Ample capacity → no structural churn after warmup: every thread's adds
  // land via the lock-free fast path and integer-valued sums are exact.
  ConcurrentTopCKAggregator table(256, 8);
  constexpr int kThreads = 8;
  const int adds = static_cast<int>(meloppr::test::stress_iters(20'000));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, adds] {
      for (int i = 0; i < adds; ++i) {
        table.add(static_cast<graph::NodeId>(i % 97), 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(table.entries(), 97u);
  EXPECT_EQ(table.evictions(), 0u);
  EXPECT_GT(table.fast_path_adds(), 0u);
  double total = 0.0;
  for (const auto& sn : table.top(97)) total += sn.score;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kThreads) * adds);
}

TEST(ConcurrentTopCK, ConcurrentEvictionChurnStaysBounded) {
  // Small capacity + many distinct nodes: insert/evict races hammer the
  // structural path while resident updates race through the fast path.
  ConcurrentTopCKAggregator table(48, 4);
  constexpr int kThreads = 8;
  const int adds = static_cast<int>(meloppr::test::stress_iters(10'000));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, adds, t] {
      Rng rng(meloppr::test::test_seed() ^ static_cast<std::uint64_t>(t));
      for (int i = 0; i < adds; ++i) {
        table.add(static_cast<graph::NodeId>(rng.below(4096)),
                  rng.uniform(-0.1, 1.0));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(table.entries(), 48u);
  EXPECT_GT(table.evictions(), 0u);
  EXPECT_GT(table.eviction_bound(),
            -std::numeric_limits<double>::infinity());
  // The table stays coherent: a full dump is sorted, deduplicated, and
  // within capacity.
  const auto all = table.top(48);
  EXPECT_LE(all.size(), 48u);
  std::map<graph::NodeId, double> dedup;
  for (const auto& sn : all) {
    EXPECT_TRUE(dedup.emplace(sn.node, sn.score).second)
        << "node " << sn.node << " listed twice";
  }
}

// ---------------------------------------------------------------------------
// Engine/pipeline integration
// ---------------------------------------------------------------------------

TEST(BoundedAggregation, RecallDegradesMonotonicallyAsCShrinks) {
  // Fig. 6's story: precision vs the exact aggregation falls as the table
  // shrinks. Averaged over several seeds; the small slack absorbs rank
  // ties at the top-k boundary.
  Rng rng(meloppr::test::test_seed() ^ 0xfeed);
  Graph g = graph::barabasi_albert(1500, 2, 3, rng);
  Engine exact_engine(g, small_config());
  std::vector<graph::NodeId> seeds;
  for (int i = 0; i < 6; ++i) {
    seeds.push_back(static_cast<graph::NodeId>(rng.below(g.num_nodes())));
  }
  std::vector<std::vector<ppr::ScoredNode>> truth;
  truth.reserve(seeds.size());
  for (graph::NodeId s : seeds) truth.push_back(exact_engine.query(s).top);

  const std::size_t k = small_config().k;
  std::vector<double> recall_by_c;
  for (const std::size_t c : {1u, 2u, 4u, 8u}) {
    Engine bounded(g, small_config(AggregationMode::kBounded, c));
    double sum = 0.0;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      sum += ppr::precision_at_k(truth[i], bounded.query(seeds[i]).top, k);
    }
    recall_by_c.push_back(sum / static_cast<double>(seeds.size()));
  }
  for (std::size_t i = 1; i < recall_by_c.size(); ++i) {
    EXPECT_GE(recall_by_c[i] + 0.05, recall_by_c[i - 1])
        << "recall fell when c grew from rank " << i - 1 << " to " << i
        << " (seed " << meloppr::test::test_seed() << ")";
  }
  // The paper's headline: ample c is near-lossless, starved c is not.
  EXPECT_GE(recall_by_c.back(), 0.9);
}

TEST(BoundedAggregation, SerialQueryReportsTableStats) {
  Rng rng(meloppr::test::test_seed() ^ 0xbead);
  Graph g = graph::barabasi_albert(1200, 2, 3, rng);
  // c=1: the table holds only k entries, so evictions are guaranteed on
  // any query touching more than k nodes.
  Engine engine(g, small_config(AggregationMode::kBounded, 1));
  const QueryResult r = engine.query(17);
  EXPECT_LE(r.stats.aggregator_entries, engine.config().table_capacity());
  EXPECT_GT(r.stats.aggregator_evictions, 0u);
  EXPECT_EQ(r.stats.aggregator_bytes, engine.config().table_capacity() * 8u);
  EXPECT_LE(r.top.size(), engine.config().k);
}

TEST(BoundedAggregation, BatchBitIdenticalToSerialAtEveryThreadCount) {
  // The acceptance contract: query_batch + bounded aggregation reproduces
  // Engine::query with a TopCKAggregator entry-for-entry at 1, 2, 4, and
  // 8 workers, in both scheduling modes.
  Rng rng(meloppr::test::test_seed() ^ 0xabcd);
  Graph g = graph::barabasi_albert(1200, 2, 3, rng);
  // c=2 on k=20: small enough that evictions demonstrably happen (the
  // equivalence must hold *through* the lossy path, not vacuously).
  Engine engine(g, small_config(AggregationMode::kBounded, 2));

  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 12; ++s) seeds.push_back(s * 97 % 1200);
  std::vector<QueryResult> want;
  want.reserve(seeds.size());
  std::size_t total_evictions = 0;
  for (graph::NodeId s : seeds) {
    want.push_back(engine.query(s));
    total_evictions += want.back().stats.aggregator_evictions;
  }
  ASSERT_GT(total_evictions, 0u) << "c too large to exercise eviction";

  CpuBackend backend(0.85);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (const bool stealing : {false, true}) {
      PipelineConfig pcfg;
      pcfg.threads = threads;
      pcfg.work_stealing = stealing;
      QueryPipeline pipeline(engine, backend, pcfg);
      QueryPipeline::BatchStats batch;
      const auto results = pipeline.query_batch(seeds, &batch);
      ASSERT_EQ(results.size(), seeds.size());
      for (std::size_t i = 0; i < seeds.size(); ++i) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " stealing=" + std::to_string(stealing) +
                     " query=" + std::to_string(i));
        expect_bit_identical(want[i], results[i]);
        EXPECT_EQ(results[i].stats.aggregator_evictions,
                  want[i].stats.aggregator_evictions);
      }
      EXPECT_EQ(batch.aggregator_evictions, total_evictions);
      EXPECT_LE(batch.peak_aggregator_entries,
                engine.config().table_capacity());
    }
  }
}

TEST(BoundedAggregation, BatchBitIdenticalUnderForcedStealingSkew) {
  // One hub query with a huge stage-2 fan-out plus periphery queries: the
  // light workers finish and steal the hub's tasks, so the reduction runs
  // over stolen, out-of-order outcomes — and must still replay the serial
  // bounded semantics exactly.
  Rng rng(meloppr::test::test_seed() ^ 0x5ca1ed);
  Graph g = graph::barabasi_albert(2500, 2, 3, rng);
  MelopprConfig cfg = small_config(AggregationMode::kBounded, 2);
  cfg.selection = Selection::top_ratio(0.08);
  Engine engine(g, cfg);

  graph::NodeId hub = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  std::vector<graph::NodeId> seeds{hub};
  for (graph::NodeId v = 0; v < g.num_nodes() && seeds.size() < 4; ++v) {
    if (g.degree(v) <= 2) seeds.push_back(v);
  }
  ASSERT_EQ(seeds.size(), 4u);

  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  pcfg.work_stealing = true;
  QueryPipeline pipeline(engine, backend, pcfg);
  QueryPipeline::BatchStats batch;
  const auto results = pipeline.query_batch(seeds, &batch);
  // The skew must actually engage stealing for the test to mean anything
  // (single-core runners can legitimately drain without steals — then the
  // equivalence still holds, but flag the vacuous case loudly in CI logs).
  if (batch.stolen_tasks == 0) {
    std::cout << "note: no steals occurred (oversubscribed runner?); "
                 "equivalence checked but skew not exercised\n";
  }
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE("query=" + std::to_string(i));
    expect_bit_identical(engine.query(seeds[i]), results[i]);
  }
}

TEST(BoundedAggregation, StageParallelDeterministicReductionIsThreadInvariant) {
  // pipeline.query() reduces in task order: bounded scores must be
  // identical for any worker count (though not to the serial DFS order —
  // the frontier order differs, as with exact aggregation).
  Rng rng(meloppr::test::test_seed() ^ 0x9a9a);
  Graph g = graph::barabasi_albert(900, 2, 2, rng);
  Engine engine(g, small_config(AggregationMode::kBounded, 2));
  CpuBackend backend(0.85);

  std::optional<QueryResult> reference;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    PipelineConfig pcfg;
    pcfg.threads = threads;
    QueryPipeline pipeline(engine, backend, pcfg);
    const QueryResult r = pipeline.query(23);
    EXPECT_LE(r.stats.aggregator_entries, engine.config().table_capacity());
    if (!reference.has_value()) {
      reference = r;
    } else {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      expect_bit_identical(*reference, r);
    }
  }
}

TEST(BoundedAggregation, ConcurrentStreamingReductionStaysBounded) {
  // deterministic_reduction off + bounded mode: workers stream adds into
  // the sharded concurrent table. Scores are scheduling-dependent by
  // contract; the memory envelope and crash/race-freedom (TSan) are not.
  Rng rng(meloppr::test::test_seed() ^ 0x77);
  Graph g = graph::barabasi_albert(900, 2, 2, rng);
  Engine engine(g, small_config(AggregationMode::kBounded, 2));
  CpuBackend backend(0.85);
  PipelineConfig pcfg;
  pcfg.threads = 4;
  pcfg.deterministic_reduction = false;
  QueryPipeline pipeline(engine, backend, pcfg);
  const QueryResult r = pipeline.query(42);
  EXPECT_LE(r.stats.aggregator_entries, engine.config().table_capacity());
  EXPECT_FALSE(r.top.empty());
  EXPECT_LE(r.top.size(), engine.config().k);
  // The bounded result still finds most of what exact finds.
  Engine exact_engine(g, small_config());
  const double recall = ppr::precision_at_k(
      exact_engine.query(42).top, r.top, engine.config().k);
  EXPECT_GT(recall, 0.5);
}

TEST(BoundedAggregation, PooledBoundedArenasReuseAndIsolate) {
  AggregatorPool pool(2, [] {
    return std::make_unique<TopCKAggregator>(8);
  });
  {
    AggregatorPool::Lease lease = pool.acquire(0);
    EXPECT_EQ(lease->capacity(), 8u);
    for (graph::NodeId v = 0; v < 12; ++v) {
      lease->add(v, 0.1 * static_cast<double>(v + 1));
    }
    EXPECT_EQ(lease->entries(), 8u);
    EXPECT_GT(lease->evictions(), 0u);
  }
  {
    // Reused arena comes back empty with eviction state reset.
    AggregatorPool::Lease lease = pool.acquire(0);
    EXPECT_EQ(lease->entries(), 0u);
    EXPECT_EQ(lease->evictions(), 0u);
    EXPECT_EQ(lease->capacity(), 8u);
  }
  EXPECT_EQ(pool.reuses(), 1u);
}

}  // namespace
}  // namespace meloppr::core

// Custom main (the linker prefers this over gtest_main's): --seed flag +
// failure reproduction line.
int main(int argc, char** argv) {
  return meloppr::test::run_all_tests(argc, argv);
}
