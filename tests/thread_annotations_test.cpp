// util::Mutex / util::SharedMutex wrapper semantics — the annotated
// drop-ins (util/thread_annotations.hpp) must behave exactly like the std
// types they wrap, because every concurrency class in src/ now holds its
// locks through them. Each test pins one contract the std types promise:
// defer/adopt/try construction, mid-scope unlock/relock, owns_lock
// bookkeeping, reader/writer exclusion, and condition-variable interop via
// MutexLock::native(). Under Clang the annotations additionally make lock
// misuse a compile error (tests/negative/); here we verify the runtime
// half on any compiler.
#include "util/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace meloppr::util {
namespace {

TEST(MutexWrapper, LockUnlockTryLockMatchStdSemantics) {
  Mutex mu;
  mu.lock();
  // A held (non-recursive) mutex refuses try_lock from another thread —
  // same contract as std::mutex (same-thread try_lock is UB there, so the
  // probe runs on a second thread).
  bool acquired = true;
  std::thread probe([&] { acquired = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexLock, ScopedAcquireReleases) {
  Mutex mu;
  {
    MutexLock lock(mu);
    EXPECT_TRUE(lock.owns_lock());
  }
  // Released at scope exit: immediately reacquirable.
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexLock, DeferLockMatchesStdUniqueLock) {
  Mutex mu;
  MutexLock lock(mu, std::defer_lock);
  EXPECT_FALSE(lock.owns_lock());
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  // Destroying a non-owning lock must not unlock anything (std::unique_lock
  // contract): take the mutex first and verify it stays ours.
  mu.lock();
  { MutexLock deferred(mu, std::defer_lock); }
  bool acquired = true;
  std::thread probe([&] { acquired = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired);  // still held: the deferred dtor didn't release
  mu.unlock();
}

TEST(MutexLock, AdoptLockTakesOverAHeldMutex) {
  Mutex mu;
  mu.lock();
  {
    MutexLock lock(mu, std::adopt_lock);
    EXPECT_TRUE(lock.owns_lock());
  }  // adopting lock releases on destruction, like std::unique_lock
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexLock, TryToLockReportsContention) {
  Mutex mu;
  {
    MutexLock lock(mu, std::try_to_lock);
    EXPECT_TRUE(lock.owns_lock());  // uncontended: acquired
    bool contended_owns = true;
    std::thread probe([&] {
      MutexLock contended(mu, std::try_to_lock);
      contended_owns = contended.owns_lock();
    });
    probe.join();
    EXPECT_FALSE(contended_owns);  // contended: constructed unlocked
  }
}

TEST(MutexLock, MidScopeUnlockAndRelock) {
  // The farm/prefetcher pattern: drop the lock around a slow operation,
  // retake it after. The destructor must cope with every exit state.
  Mutex mu;
  MutexLock lock(mu);
  lock.unlock();
  EXPECT_TRUE(mu.try_lock());  // genuinely released mid-scope
  mu.unlock();
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(MutexLock, NativeHandleDrivesConditionVariable) {
  // cv waits go through MutexLock::native() (std::condition_variable needs
  // the underlying std::unique_lock); the wait must atomically release and
  // reacquire exactly like a plain unique_lock wait.
  Mutex mu;
  std::condition_variable cv;
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock.native());
    EXPECT_TRUE(ready);
    EXPECT_TRUE(lock.owns_lock());  // reacquired on wakeup
  }
  signaller.join();
}

TEST(MutexWrapper, ExcludesConcurrentCriticalSections) {
  // Mutual exclusion smoke test: racing unprotected ++ on a plain int from
  // many threads must still total exactly N when every increment holds the
  // wrapper lock.
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SharedMutexWrapper, ReadersShareWritersExclude) {
  SharedMutex mu;
  {
    ReaderLock r1(mu);
    // A second reader enters while the first holds shared — std
    // shared_mutex semantics (probe from another thread to avoid
    // same-thread recursion UB).
    bool second_reader = false;
    std::thread probe1([&] {
      second_reader = mu.try_lock_shared();
      if (second_reader) mu.unlock_shared();
    });
    probe1.join();
    EXPECT_TRUE(second_reader);
    // A writer cannot.
    bool writer = true;
    std::thread probe2([&] { writer = mu.try_lock(); });
    probe2.join();
    EXPECT_FALSE(writer);
  }
  {
    WriterLock w(mu);
    // The writer excludes readers and other writers.
    bool reader = true;
    bool writer = true;
    std::thread probe([&] {
      reader = mu.try_lock_shared();
      writer = mu.try_lock();
    });
    probe.join();
    EXPECT_FALSE(reader);
    EXPECT_FALSE(writer);
  }
  // Fully released after both scopes.
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SharedMutexWrapper, WriterSeesAllReaderSideEffects) {
  // Reader/writer coherence under churn: writers bump two counters under
  // the writer lock; readers assert they never observe a torn pair.
  SharedMutex mu;
  long a = 0;
  long b = 0;
  std::atomic<bool> torn{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ReaderLock lock(mu);
        if (a != b) torn.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 5000; ++i) {
    WriterLock lock(mu);
    ++a;
    ++b;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(a, 5000);
  EXPECT_EQ(b, a);
}

TEST(Annotations, MacrosCompileToNothingWhereUnsupported) {
  // The macro layer must be inert text on non-Clang compilers (and valid
  // attributes on Clang): a function using the full macro set both
  // compiles and runs. The lambda-free helper below exercises REQUIRES
  // via a real acquire.
  struct Guarded {
    Mutex mu;
    int value MELOPPR_GUARDED_BY(mu) = 0;
    void bump() MELOPPR_EXCLUDES(mu) {
      MutexLock lock(mu);
      ++value;
    }
    int read() MELOPPR_EXCLUDES(mu) {
      MutexLock lock(mu);
      return value;
    }
  };
  Guarded g;
  g.bump();
  g.bump();
  EXPECT_EQ(g.read(), 2);
}

}  // namespace
}  // namespace meloppr::util
