// Parameterized property sweeps over the library's core invariants:
// stage-decomposition exactness for every (graph family × stage split ×
// alpha), quantizer error envelopes, and aggregator equivalences.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/engine.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/paper_graphs.hpp"
#include "hw/host.hpp"
#include "ppr/local_ppr.hpp"
#include "util/rng.hpp"

namespace meloppr {
namespace {

using core::CpuBackend;
using core::Engine;
using core::ExactAggregator;
using core::MelopprConfig;
using core::Selection;
using graph::Graph;
using graph::NodeId;

enum class Family { kBa, kEr, kWs, kCommunity, kBarbell, kTree };

std::string family_name(Family f) {
  switch (f) {
    case Family::kBa: return "ba";
    case Family::kEr: return "er";
    case Family::kWs: return "ws";
    case Family::kCommunity: return "community";
    case Family::kBarbell: return "barbell";
    case Family::kTree: return "tree";
  }
  return "?";
}

Graph make_family(Family f, Rng& rng) {
  switch (f) {
    case Family::kBa: return graph::barabasi_albert(250, 2, 3, rng);
    case Family::kEr: return graph::erdos_renyi(250, 700, rng);
    case Family::kWs: return graph::watts_strogatz(250, 6, 0.2, rng);
    case Family::kCommunity:
      return graph::community_graph(250, 12, 4.0, 1.0, rng);
    case Family::kBarbell: return graph::fixtures::barbell(20);
    case Family::kTree: return graph::fixtures::binary_tree(255);
  }
  throw std::logic_error("unknown family");
}

// ---------------------------------------------------------------------------
// Property 1: Eq. 8 exactness across families × splits × alpha.
// ---------------------------------------------------------------------------

using ExactnessParam = std::tuple<Family, std::vector<unsigned>, double>;

class StageDecompositionExactness
    : public ::testing::TestWithParam<ExactnessParam> {};

TEST_P(StageDecompositionExactness, MelopprEqualsSingleStage) {
  const auto& [family, lengths, alpha] = GetParam();
  Rng rng(777);
  Graph g = make_family(family, rng);
  NodeId seed = graph::random_seed_node(g, rng);

  unsigned total = 0;
  for (unsigned l : lengths) total += l;

  ppr::LocalPprResult base = ppr::local_ppr(
      g, seed, {alpha, total, 1});
  std::map<NodeId, double> truth;
  for (const auto& sn : base.scores) truth.emplace(sn.node, sn.score);

  MelopprConfig cfg;
  cfg.alpha = alpha;
  cfg.stage_lengths = lengths;
  cfg.k = 10;
  cfg.selection = Selection::all();
  Engine engine(g, cfg);
  CpuBackend backend(alpha);
  ExactAggregator agg;
  engine.query(seed, backend, agg);

  for (const auto& [node, score] : agg.scores()) {
    const double expected = truth.count(node) ? truth.at(node) : 0.0;
    ASSERT_NEAR(score, expected, 1e-9)
        << family_name(family) << " node " << node;
  }
  for (const auto& [node, expected] : truth) {
    const auto it = agg.scores().find(node);
    const double got = it == agg.scores().end() ? 0.0 : it->second;
    ASSERT_NEAR(got, expected, 1e-9)
        << family_name(family) << " node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesSplitsAlphas, StageDecompositionExactness,
    ::testing::Combine(
        ::testing::Values(Family::kBa, Family::kEr, Family::kWs,
                          Family::kCommunity, Family::kBarbell,
                          Family::kTree),
        ::testing::Values(std::vector<unsigned>{3, 3},
                          std::vector<unsigned>{2, 4},
                          std::vector<unsigned>{2, 2, 2}),
        ::testing::Values(0.5, 0.85)),
    [](const ::testing::TestParamInfo<ExactnessParam>& info) {
      std::string name = family_name(std::get<0>(info.param)) + "_l";
      for (unsigned l : std::get<1>(info.param)) name += std::to_string(l);
      name += std::get<2>(info.param) < 0.6 ? "_a50" : "_a85";
      return name;
    });

// ---------------------------------------------------------------------------
// Property 2: quantizer precision-loss envelopes (Sec. V-A) per d policy.
// ---------------------------------------------------------------------------

class QuantizerEnvelope : public ::testing::TestWithParam<hw::DChoice> {};

TEST_P(QuantizerEnvelope, TopKPrecisionWithinPaperBound) {
  Rng rng(888);
  Graph g = graph::barabasi_albert(800, 2, 2, rng);
  const std::size_t k = 20;
  double worst = 1.0;
  for (int trial = 0; trial < 3; ++trial) {
    const NodeId seed = graph::random_seed_node(g, rng);
    graph::Subgraph ball = graph::extract_ball(g, seed, 3);
    ppr::DiffusionResult ref =
        ppr::diffuse_from(ball, 0, 1.0, {0.85, 3});

    hw::Quantizer quant = hw::Quantizer::from_graph_stats(
        0.85, 10, GetParam(), g.average_degree(), g.max_degree(),
        ball.num_nodes());
    hw::AcceleratorConfig cfg;
    cfg.parallelism = 4;
    hw::Accelerator accel(cfg, quant);
    hw::AcceleratorRun run = accel.diffuse(ball, quant.to_fixed(1.0), 3);

    std::vector<ppr::ScoredNode> truth;
    std::vector<ppr::ScoredNode> fixed;
    for (NodeId v = 0; v < ball.num_nodes(); ++v) {
      truth.push_back({ball.to_global(v), ref.accumulated[v]});
      fixed.push_back(
          {ball.to_global(v), quant.to_real(run.accumulated[v])});
    }
    const double prec = ppr::precision_at_k(ppr::top_k(truth, k),
                                            ppr::top_k(fixed, k), k);
    worst = std::min(worst, prec);
  }
  // Sec. V-A: avg-degree d loses <4%; larger d loses less. Small balls make
  // individual ranks noisier than the paper's full-graph averages, so allow
  // slack while preserving the ordering claim.
  const double floor = GetParam() == hw::DChoice::kAverageDegree ? 0.8 : 0.9;
  EXPECT_GE(worst, floor);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, QuantizerEnvelope,
                         ::testing::Values(hw::DChoice::kAverageDegree,
                                           hw::DChoice::kHalfMaxDegree,
                                           hw::DChoice::kMaxDegree),
                         [](const ::testing::TestParamInfo<hw::DChoice>& i) {
                           switch (i.param) {
                             case hw::DChoice::kAverageDegree: return "avg";
                             case hw::DChoice::kHalfMaxDegree: return "half";
                             case hw::DChoice::kMaxDegree: return "max";
                           }
                           return "x";
                         });

// ---------------------------------------------------------------------------
// Property 3: top-c·k aggregation equals exact aggregation when c·k covers
// the touched set (DESIGN.md invariant 7), across c values.
// ---------------------------------------------------------------------------

class CTableEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CTableEquivalence, AmpleCapacityIsLossless) {
  Rng rng(999);
  Graph g = graph::barabasi_albert(300, 2, 2, rng);
  const NodeId seed = graph::random_seed_node(g, rng);
  MelopprConfig cfg;
  cfg.stage_lengths = {2, 2};
  cfg.k = GetParam();
  cfg.selection = Selection::top_count(8);
  Engine engine(g, cfg);

  CpuBackend b1(0.85);
  ExactAggregator exact;
  core::QueryResult re = engine.query(seed, b1, exact);

  CpuBackend b2(0.85);
  // Capacity covering every node the query can touch.
  core::TopCKAggregator table(g.num_nodes());
  core::QueryResult rt = engine.query(seed, b2, table);

  ASSERT_EQ(re.top.size(), rt.top.size());
  for (std::size_t i = 0; i < re.top.size(); ++i) {
    EXPECT_EQ(re.top[i].node, rt.top[i].node) << "rank " << i;
    EXPECT_NEAR(re.top[i].score, rt.top[i].score, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, CTableEquivalence,
                         ::testing::Values(5, 20, 50));

// ---------------------------------------------------------------------------
// Property 4: precision at full selection is exactly 1.0 for every split.
// ---------------------------------------------------------------------------

class FullSelectionPrecision
    : public ::testing::TestWithParam<std::vector<unsigned>> {};

TEST_P(FullSelectionPrecision, ReachesExactTopK) {
  Rng rng(1010);
  Graph g = graph::community_graph(400, 20, 4.0, 1.0, rng);
  const NodeId seed = graph::random_seed_node(g, rng);
  unsigned total = 0;
  for (unsigned l : GetParam()) total += l;
  ppr::LocalPprResult base = ppr::local_ppr(g, seed, {0.85, total, 25});

  MelopprConfig cfg;
  cfg.stage_lengths = GetParam();
  cfg.k = 25;
  cfg.selection = Selection::all();
  core::QueryResult r = Engine(g, cfg).query(seed);
  EXPECT_DOUBLE_EQ(ppr::precision_at_k(base.top, r.top, 25), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Splits, FullSelectionPrecision,
    ::testing::Values(std::vector<unsigned>{1, 3}, std::vector<unsigned>{3, 1},
                      std::vector<unsigned>{2, 2},
                      std::vector<unsigned>{1, 1, 2}),
    [](const ::testing::TestParamInfo<std::vector<unsigned>>& info) {
      std::string name = "l";
      for (unsigned l : info.param) name += std::to_string(l);
      return name;
    });

}  // namespace
}  // namespace meloppr
