// Related-paper exploration on a citation graph — the evaluation domain of
// the paper's small graphs (citeseer / cora / pubmed).
//
// Usage:
//   ./build/examples/citation_explorer                 # calibrated pubmed
//   ./build/examples/citation_explorer my_graph.txt    # SNAP edge list
//
// Given a paper (node), the explorer surfaces the most related papers and
// compares the three PPR engines a practitioner would reach for: exact
// local PPR (memory-hungry ground truth), Monte-Carlo random walks (cheap
// but noisy), and MeLoPPR (the memory/latency sweet spot).
#include <iostream>
#include <string>

#include "core/engine.hpp"
#include "graph/io.hpp"
#include "graph/paper_graphs.hpp"
#include "ppr/local_ppr.hpp"
#include "ppr/monte_carlo.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace meloppr;
  Rng rng(11);

  graph::Graph g = (argc > 1)
                       ? graph::load_edge_list_file(argv[1])
                       : graph::make_paper_graph(
                             graph::PaperGraphId::kG3Pubmed, rng);
  std::cout << "citation graph: " << g.summary() << "\n\n";

  const std::size_t k = 20;
  const graph::NodeId paper_node = graph::random_seed_node(g, rng);
  std::cout << "finding papers related to paper " << paper_node << " …\n\n";

  // 1. Exact local PPR (ground truth).
  Timer exact_timer;
  const ppr::LocalPprResult exact = ppr::local_ppr(g, paper_node,
                                                   {0.85, 6, k});
  const double exact_ms = exact_timer.elapsed_ms();

  // 2. Monte-Carlo random walks with a matching step budget.
  Timer mc_timer;
  Rng walk_rng = rng.fork(1);
  const ppr::MonteCarloResult mc =
      ppr::monte_carlo_ppr(g, paper_node, {0.85, 6, 20000, k}, walk_rng);
  const double mc_ms = mc_timer.elapsed_ms();

  // 3. MeLoPPR at the paper's operating point.
  core::MelopprConfig config;
  config.stage_lengths = {3, 3};
  config.k = k;
  config.selection = core::Selection::top_ratio(0.05);
  const core::Engine engine(g, config);
  const core::QueryResult melo = engine.query(paper_node);

  TablePrinter table({"engine", "latency (ms)", "peak memory (KB)",
                      "precision vs exact"});
  table.add_row({"exact local PPR", fmt_fixed(exact_ms, 3),
                 fmt_fixed(static_cast<double>(exact.peak_bytes) / 1024, 1),
                 "100.0%"});
  table.add_row(
      {"Monte-Carlo (20k walks)", fmt_fixed(mc_ms, 3),
       fmt_fixed(static_cast<double>(mc.support_size) * 12.0 / 1024, 1),
       fmt_percent(ppr::precision_at_k(exact.top, mc.top, k))});
  table.add_row(
      {"MeLoPPR (5% next-stage)",
       fmt_fixed(melo.stats.total_seconds * 1e3, 3),
       fmt_fixed(static_cast<double>(melo.stats.peak_bytes) / 1024, 1),
       fmt_percent(ppr::precision_at_k(exact.top, melo.top, k))});
  std::cout << table.ascii() << '\n';

  std::cout << "most related papers (MeLoPPR):\n";
  for (const auto& [node, score] : melo.top) {
    std::cout << "  paper " << node << "  relevance " << score << '\n';
  }
  return 0;
}
