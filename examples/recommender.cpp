// Who-to-follow recommender — the paper's motivating application (Sec. I:
// "who-to-follow recommendations of Twitter and Facebook").
//
// A synthetic social network with planted communities plays the user graph.
// For a handful of users we compute MeLoPPR, filter out the user's existing
// neighbors, and present the remaining top-scored users as follow
// suggestions — the standard PPR recommendation recipe. The example also
// prints how the latency knob (selection ratio) changes suggestion quality,
// which is exactly the trade a latency-bound online service tunes.
#include <algorithm>
#include <iostream>
#include <unordered_set>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/paper_graphs.hpp"
#include "ppr/local_ppr.hpp"
#include "util/rng.hpp"

namespace {

using namespace meloppr;

/// Top follow suggestions: highest-PPR users the seed doesn't follow yet.
std::vector<ppr::ScoredNode> suggest(const graph::Graph& g,
                                     const core::QueryResult& result,
                                     graph::NodeId user, std::size_t count) {
  std::unordered_set<graph::NodeId> already;
  already.insert(user);
  for (graph::NodeId v : g.neighbors(user)) already.insert(v);

  std::vector<ppr::ScoredNode> out;
  for (const auto& scored : result.top) {
    if (already.count(scored.node) == 0) {
      out.push_back(scored);
      if (out.size() == count) break;
    }
  }
  return out;
}

}  // namespace

int main() {
  Rng rng(2024);
  // 20k users, ~150-user communities, most edges inside a community — the
  // locality that makes PPR recommendations meaningful.
  const graph::Graph g = graph::community_graph(20000, 130, 6.0, 1.5, rng);
  std::cout << "social graph: " << g.summary() << "\n\n";

  core::MelopprConfig config;
  config.stage_lengths = {3, 3};
  config.k = 50;  // rank pool; we present the best 5 non-followed
  config.selection = core::Selection::top_ratio(0.05);
  const core::Engine engine(g, config);

  for (int i = 0; i < 3; ++i) {
    const graph::NodeId user = graph::random_seed_node(g, rng);
    const core::QueryResult result = engine.query(user);
    const auto picks = suggest(g, result, user, 5);

    std::cout << "user " << user << " (follows " << g.degree(user)
              << " people) — suggested follows, "
              << result.stats.total_seconds * 1e3 << " ms:\n";
    for (const auto& [node, score] : picks) {
      std::cout << "    user " << node << "  (affinity " << score << ")\n";
    }
  }

  // The online-serving trade: suggestion quality vs latency knob.
  std::cout << "\nlatency knob (averaged over 10 users, overlap with the "
               "exact recommender's picks):\n";
  for (double ratio : {0.01, 0.05, 0.20}) {
    core::MelopprConfig cfg = config;
    cfg.selection = core::Selection::top_ratio(ratio);
    const core::Engine tuned(g, cfg);
    Rng user_rng(99);
    double overlap = 0.0;
    double ms = 0.0;
    const int users = 10;
    for (int i = 0; i < users; ++i) {
      const graph::NodeId user = graph::random_seed_node(g, user_rng);
      const core::QueryResult fast = tuned.query(user);
      const ppr::LocalPprResult exact =
          ppr::local_ppr(g, user, {cfg.alpha, 6, cfg.k});
      overlap += ppr::precision_at_k(exact.top, fast.top, cfg.k);
      ms += fast.stats.total_seconds * 1e3;
    }
    std::cout << "  ratio " << ratio * 100 << "%: overlap "
              << overlap / users * 100.0 << "%, avg " << ms / users
              << " ms/query\n";
  }
  return 0;
}
