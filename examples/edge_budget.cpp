// Edge-device deployment planner — the co-design loop of Sec. V run as a
// tool: given a BRAM budget (a share of the KC705), pick the largest PE
// parallelism that fits, size the quantizer for the target graph, and then
// *verify* the plan by simulating hybrid CPU+FPGA queries and reporting
// latency, precision and on-chip memory.
#include <iostream>

#include "core/engine.hpp"
#include "core/memory_model.hpp"
#include "graph/paper_graphs.hpp"
#include "hw/host.hpp"
#include "hw/resource_model.hpp"
#include "ppr/local_ppr.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace meloppr;
  Rng rng(31);

  const graph::Graph g =
      graph::make_paper_graph(graph::PaperGraphId::kG2Cora, rng);
  std::cout << "target graph: " << g.summary() << "\n\n";

  const hw::ResourceModel model;
  std::cout << "device: " << model.device().name << "\n\n";

  TablePrinter plan({"BRAM budget", "chosen P", "LUT use", "BRAM use",
                     "avg query (ms)", "precision", "on-chip KB"});

  for (double budget_fraction : {0.10, 0.25, 0.50, 0.80}) {
    // Largest P whose estimate fits the budgeted BRAM share (and the LUTs).
    unsigned best_p = 0;
    hw::ResourceUsage best_usage;
    for (unsigned p = 1; p <= 32; ++p) {
      const hw::ResourceUsage usage = model.estimate(p);
      if (usage.fits && usage.bram_fraction <= budget_fraction) {
        best_p = p;
        best_usage = usage;
      }
    }
    if (best_p == 0) {
      plan.add_row({fmt_percent(budget_fraction, 0), "-", "-", "-", "-",
                    "-", "-"});
      continue;
    }

    // Verify the plan in simulation.
    hw::AcceleratorConfig acfg;
    acfg.parallelism = best_p;
    hw::Quantizer quant = hw::Quantizer::from_graph_stats(
        0.85, 10, hw::DChoice::kHalfMaxDegree, g.average_degree(),
        g.max_degree(), g.num_nodes());
    hw::FpgaBackend fpga{hw::Accelerator(acfg, quant)};

    core::MelopprConfig cfg;
    cfg.stage_lengths = {3, 3};
    cfg.k = 100;
    cfg.selection = core::Selection::top_ratio(0.05);
    const core::Engine engine(g, cfg);

    Rng seed_rng(7);
    double ms = 0.0;
    double precision = 0.0;
    double bram_kb = 0.0;
    const int queries = 5;
    for (int i = 0; i < queries; ++i) {
      const graph::NodeId seed = graph::random_seed_node(g, seed_rng);
      core::TopCKAggregator table(10 * cfg.k);
      const core::QueryResult r = engine.query(seed, fpga, table);
      ms += (r.stats.bfs_seconds() + r.stats.compute_seconds() +
             r.stats.transfer_seconds()) *
            1e3;
      const ppr::LocalPprResult exact =
          ppr::local_ppr(g, seed, {cfg.alpha, 6, cfg.k});
      precision += ppr::precision_at_k(exact.top, r.top, cfg.k);
      std::size_t ball_nodes = 0;
      std::size_t ball_edges = 0;
      for (const auto& st : r.stats.stages) {
        ball_nodes = std::max(ball_nodes, st.max_ball_nodes);
        ball_edges = std::max(ball_edges, st.max_ball_edges);
      }
      bram_kb += static_cast<double>(
                     core::fpga_bram_bytes(ball_nodes, ball_edges)) /
                 1024.0;
    }

    plan.add_row({fmt_percent(budget_fraction, 0), std::to_string(best_p),
                  fmt_percent(best_usage.lut_fraction),
                  fmt_percent(best_usage.bram_fraction),
                  fmt_fixed(ms / queries, 3),
                  fmt_percent(precision / queries),
                  fmt_fixed(bram_kb / queries, 1)});
  }

  std::cout << plan.ascii() << '\n'
            << "reading: a bigger BRAM budget buys more PEs (lower "
               "diffusion latency) until the CPU-side BFS dominates — the "
               "same conclusion as the paper's P=16 choice.\n";
  return 0;
}
