// A PPR query server on an edge device — the paper's deployment story
// (Sec. I: real-time responses on memory-constrained devices) run as a
// serving simulation, now served by the concurrent QueryPipeline.
//
// A stream of queries with a skewed (popular-seed-heavy) distribution hits
// the same MeLoPPR engine four ways:
//   * serial, cold           — the baseline single-threaded engine;
//   * serial + ball cache    — BFS time converted into memory (the LRU
//                              ball cache; single-threaded by design);
//   * pipeline, T workers    — QueryPipeline::query_batch, the throughput
//                              path: queries run concurrently, scores stay
//                              bit-identical to the serial engine;
//   * pipeline + serving stack — the concurrent layer: sharded ball cache
//                              shared by all workers, stage-lookahead
//                              prefetch hiding BFS behind diffusion, and
//                              work-stealing across queries.
// The report shows tail latency, throughput, and what each configuration
// spends (cache memory vs cores) — the serving-time face of the paper's
// memory↔latency trade-off, plus the parallelism its Sec. VI-C future work
// predicts. The new columns surface the serving layer's own telemetry:
// cache hit rate, prefetch-hidden BFS seconds, steal counts, and — for the
// bounded-aggregation rows — the score-table occupancy and evictions of
// the paper's c·k BRAM strategy, now served through the same concurrent
// batch path instead of being exact-only.
#include <iostream>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/ball_cache.hpp"
#include "core/engine.hpp"
#include "core/pipeline.hpp"
#include "core/serving.hpp"
#include "core/sharded_ball_cache.hpp"
#include "graph/paper_graphs.hpp"
#include "hw/farm.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

int main() {
  using namespace meloppr;
  Rng rng(77);

  const graph::Graph g =
      graph::make_paper_graph(graph::PaperGraphId::kG3Pubmed, rng);
  std::cout << "serving graph: " << g.summary() << "\n\n";

  core::MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = 100;
  cfg.selection = core::Selection::top_ratio(0.03);
  core::Engine engine(g, cfg);

  // Query stream: 70% of traffic goes to 32 popular seeds (a Zipf-ish
  // head), the rest uniform — the access pattern of a real recommender.
  std::vector<graph::NodeId> popular;
  for (int i = 0; i < 32; ++i) {
    popular.push_back(graph::random_seed_node(g, rng));
  }
  const std::size_t query_count = 200;
  std::vector<graph::NodeId> stream;
  for (std::size_t i = 0; i < query_count; ++i) {
    stream.push_back(rng.chance(0.7)
                         ? popular[rng.below(popular.size())]
                         : graph::random_seed_node(g, rng));
  }

  TablePrinter report({"configuration", "p50 (ms)", "p99 (ms)", "mean (ms)",
                       "wall (s)", "queries/s", "BFS share",
                       "cache hit rate", "cache MB", "hidden BFS (s)",
                       "steals", "agg entries", "agg evict"});

  // `service_s` is Σ QueryStats::service_seconds(), NOT total_seconds:
  // totals are arrival→finalize and include queueing, so dividing BFS by
  // them would understate the BFS share of actual work. Every ratio is
  // guarded — an all-shed or instantaneous row prints '-' instead of
  // dividing by zero.
  const auto add_row = [&](const std::string& name, const Samples& latency_ms,
                           double wall_s, double bfs_s, double service_s,
                           const std::string& hit_rate,
                           const std::string& cache_mb,
                           const std::string& hidden,
                           const std::string& steals,
                           const std::string& agg_entries,
                           const std::string& agg_evict) {
    const bool have_latency = !latency_ms.empty();
    report.add_row(
        {name, have_latency ? fmt_fixed(latency_ms.median(), 2) : "-",
         have_latency ? fmt_fixed(latency_ms.percentile(99.0), 2) : "-",
         have_latency ? fmt_fixed(latency_ms.mean(), 2) : "-",
         fmt_fixed(wall_s, 2),
         wall_s > 0.0
             ? fmt_fixed(static_cast<double>(latency_ms.count()) / wall_s, 1)
             : "-",
         service_s > 0.0 ? fmt_percent(bfs_s / service_s) : "-", hit_rate,
         cache_mb, hidden, steals, agg_entries, agg_evict});
  };

  // --- Serial engine, cold and with byte-budgeted ball caches. ---
  const auto serve_serial = [&](core::BallCache* cache,
                                const std::string& name) {
    engine.set_ball_cache(cache);
    Samples latency_ms;
    double bfs_s = 0.0;
    double total_s = 0.0;
    Timer wall;
    for (graph::NodeId seed : stream) {
      Timer t;
      const core::QueryResult r = engine.query(seed);
      latency_ms.add(t.elapsed_ms());
      bfs_s += r.stats.bfs_seconds();
      total_s += r.stats.service_seconds();
    }
    const double wall_s = wall.elapsed_seconds();
    engine.set_ball_cache(nullptr);
    add_row(name, latency_ms, wall_s, bfs_s, total_s,
            cache != nullptr ? fmt_percent(cache->hit_rate()) : "-",
            cache != nullptr
                ? fmt_fixed(static_cast<double>(cache->bytes()) / (1 << 20),
                            1)
                : "-",
            "-", "-", "-", "-");
  };

  serve_serial(nullptr, "serial, cold");
  core::BallCache small_cache(g, 8u << 20);
  serve_serial(&small_cache, "serial, 8 MB ball cache");
  core::BallCache big_cache(g, 64u << 20);
  serve_serial(&big_cache, "serial, 64 MB ball cache");

  // --- Pipeline: the same stream served by T concurrent workers, bare
  //     (PR 1 behavior), with the full serving stack (sharded cache +
  //     stage-lookahead prefetch + work stealing), and with the serving
  //     stack plus bounded top-c·k aggregation (the paper's BRAM memory
  //     envelope per in-flight query, scores bit-identical to the serial
  //     bounded engine). ---
  core::MelopprConfig bounded_cfg = cfg;
  bounded_cfg.aggregation = core::AggregationMode::kBounded;
  bounded_cfg.topck_c = 10;
  core::Engine bounded_engine(g, bounded_cfg);

  std::vector<std::string> serving_notes;
  const auto serve_pipeline = [&](std::size_t threads, bool serving_stack,
                                  bool bounded,
                                  core::CacheAdmission admission =
                                      core::CacheAdmission::kAlways) {
    core::Engine& eng = bounded ? bounded_engine : engine;
    core::CpuBackend backend(cfg.alpha);
    core::PipelineConfig pcfg;
    pcfg.threads = threads;
    pcfg.prefetch = serving_stack;
    // This demo host's cores are otherwise idle during the run, so opt out
    // of the backend-aware throttle to show the lookahead columns; a
    // production CPU-only server keeps the default (throttled) and relies
    // on the cache alone.
    pcfg.prefetch_throttle = false;
    pcfg.work_stealing = serving_stack;
    core::ShardedBallCache shared_cache(g, 64u << 20, 0, admission);
    if (serving_stack) eng.set_shared_ball_cache(&shared_cache);
    core::QueryPipeline pipeline(eng, backend, pcfg);
    core::QueryPipeline::BatchStats batch;
    Timer wall;
    const std::vector<core::QueryResult> results =
        pipeline.query_batch(stream, &batch);
    const double wall_s = wall.elapsed_seconds();
    eng.set_shared_ball_cache(nullptr);
    Samples latency_ms;
    double bfs_s = 0.0;
    double total_s = 0.0;
    for (const auto& r : results) {
      latency_ms.add(r.stats.total_seconds * 1e3);
      bfs_s += r.stats.bfs_seconds();
      total_s += r.stats.service_seconds();
    }
    const std::string label =
        (bounded ? "bounded c=10 stack, "
                 : serving_stack ? "serving stack, " : "pipeline, ") +
        std::to_string(threads) + " workers" +
        (admission == core::CacheAdmission::kTinyLFU ? " +TinyLFU" : "");
    if (serving_stack) {
      serving_notes.push_back(
          label + ": root prefetches " +
          std::to_string(batch.root_prefetch_issued) + " (window " +
          std::to_string(batch.last_root_prefetch_window) +
          ", prefetch idle " + fmt_percent(batch.prefetch_idle_fraction) +
          "), pin hits " + std::to_string(batch.root_prefetch_pin_hits) +
          ", root re-extractions " +
          std::to_string(batch.root_reextractions) +
          ", admission rejects " +
          std::to_string(batch.cache_admission_rejects));
    }
    add_row(label, latency_ms, wall_s, bfs_s, total_s,
            serving_stack ? fmt_percent(batch.cache_hit_rate()) : "-",
            serving_stack
                ? fmt_fixed(
                      static_cast<double>(shared_cache.bytes()) / (1 << 20),
                      1)
                : "-",
            serving_stack ? fmt_fixed(batch.prefetch_hidden_seconds, 2)
                          : "-",
            serving_stack ? std::to_string(batch.stolen_tasks) : "-",
            std::to_string(batch.peak_aggregator_entries),
            bounded ? std::to_string(batch.aggregator_evictions) : "-");
  };

  for (const std::size_t threads : {2u, 4u, 8u}) {
    serve_pipeline(threads, /*serving_stack=*/false, /*bounded=*/false);
  }
  for (const std::size_t threads : {2u, 4u, 8u}) {
    serve_pipeline(threads, /*serving_stack=*/true, /*bounded=*/false);
  }
  // TinyLFU admission on top of the full stack: same stream, but hub balls
  // are protected from the uniform tail's one-shot seeds.
  serve_pipeline(8, /*serving_stack=*/true, /*bounded=*/false,
                 core::CacheAdmission::kTinyLFU);
  for (const std::size_t threads : {4u, 8u}) {
    serve_pipeline(threads, /*serving_stack=*/true, /*bounded=*/true);
  }

  // --- SLO front end: the same stream served through ServingFrontEnd —
  //     continuous ingest into the stealing scheduler with a bounded
  //     admission queue, per-tenant fair queueing (the popular head and
  //     the uniform tail as separate tenants), deadline-aware batch
  //     formation, and arrival→completion latency accounting. Scores stay
  //     bit-identical to the serial engine; the row's percentiles include
  //     admission wait, which is what a client actually experiences. ---
  {
    core::CpuBackend backend(cfg.alpha);
    core::PipelineConfig pcfg;
    pcfg.threads = 4;
    pcfg.prefetch = true;
    pcfg.prefetch_throttle = false;
    core::ShardedBallCache shared_cache(g, 64u << 20);
    engine.set_shared_ball_cache(&shared_cache);
    core::QueryPipeline pipeline(engine, backend, pcfg);

    core::ServingConfig scfg;
    scfg.tenants = 2;  // tenant 0: popular head, tenant 1: uniform tail
    scfg.queue_capacity = 256;  // absorbs the whole burst: sheds are SLO-driven
    // A 2-second SLO against a ~3-second backlog: the head of the queue
    // completes in time, the tail is shed at dispatch instead of being
    // executed into a guaranteed miss — the telemetry line shows the split.
    scfg.default_deadline_seconds = 2.0;
    core::ServingFrontEnd fe(pipeline, scfg);

    const std::unordered_set<graph::NodeId> head(popular.begin(),
                                                 popular.end());
    Timer wall;
    std::size_t rejected = 0;
    for (graph::NodeId seed : stream) {
      const std::size_t tenant = head.count(seed) != 0 ? 0u : 1u;
      if (!fe.submit(seed, tenant).admitted) ++rejected;
    }
    const std::vector<core::ServedQuery> served = fe.drain();
    const double wall_s = wall.elapsed_seconds();
    fe.shutdown();
    engine.set_shared_ball_cache(nullptr);

    Samples latency_ms;
    double bfs_s = 0.0;
    double total_s = 0.0;
    for (const core::ServedQuery& sq : served) {
      if (sq.status != core::ServeStatus::kOk) continue;
      latency_ms.add(sq.response_seconds * 1e3);
      bfs_s += sq.result.stats.bfs_seconds();
      total_s += sq.result.stats.service_seconds();
    }
    const core::ServingStats ss = fe.stats();
    const core::QueryPipeline::BatchStats& batch = fe.pipeline_stats();
    add_row("SLO front end, 4 workers", latency_ms, wall_s, bfs_s, total_s,
            fmt_percent(batch.cache_hit_rate()),
            fmt_fixed(static_cast<double>(shared_cache.bytes()) / (1 << 20),
                      1),
            fmt_fixed(batch.prefetch_hidden_seconds, 2),
            std::to_string(batch.stolen_tasks),
            std::to_string(batch.peak_aggregator_entries), "-");
    serving_notes.push_back(
        "SLO front end: admitted " + std::to_string(ss.admitted) + "/" +
        std::to_string(ss.submitted) + " (rejected " +
        std::to_string(rejected) + "), shed " +
        std::to_string(ss.shed_deadline) + ", deadline misses " +
        std::to_string(ss.deadline_misses) + ", batches " +
        std::to_string(ss.batches_formed) + " (max size " +
        std::to_string(ss.max_batch_size) + "), mean queue " +
        fmt_fixed(ss.mean_queue_seconds * 1e3, 2) +
        " ms, tenant head/tail completed " +
        std::to_string(ss.tenant_completed[0]) + "/" +
        std::to_string(ss.tenant_completed[1]));
  }

  // --- Degraded fleet: the same stream on a 2-device FPGA farm under an
  //     injected fault plan (override with MELOPPR_FAULT_PLAN), with the
  //     bit-exact fixed-point host path as failover. Queries complete
  //     through transients and a mid-stream device death; the row shows
  //     what degradation costs in latency while the detail line shows the
  //     resilience machinery's accounting. ---
  {
    FaultPlan plan = FaultPlan::from_env();
    if (plan.empty()) plan = FaultPlan::parse("transient=0.1,death=120@1");
    core::MelopprConfig fx_cfg = cfg;
    fx_cfg.numerics = ppr::Numerics::kFixedPoint;  // failover is bit-exact
    core::Engine fx_engine(g, fx_cfg);
    hw::AcceleratorConfig acfg;
    acfg.parallelism = 16;
    const hw::Quantizer quant = hw::Quantizer::from_graph_stats(
        fx_cfg.alpha, fx_cfg.fixed_point_q, fx_cfg.fixed_point_d,
        g.average_degree(), g.max_degree(), g.num_nodes());
    hw::FpgaFarm farm(2, acfg, quant, hw::DispatchPolicy::from_env(), plan);
    const std::unique_ptr<core::DiffusionBackend> fallback =
        core::make_cpu_backend(g, fx_cfg);
    core::FailoverBackend failover(farm, *fallback);
    core::ShardedBallCache shared_cache(g, 64u << 20);
    fx_engine.set_shared_ball_cache(&shared_cache);
    core::PipelineConfig pcfg;
    pcfg.threads = 4;
    pcfg.work_stealing = true;
    core::QueryPipeline pipeline(fx_engine, failover, pcfg);
    core::QueryPipeline::BatchStats batch;
    Timer wall;
    const std::vector<core::QueryResult> results =
        pipeline.query_batch(stream, &batch);
    const double wall_s = wall.elapsed_seconds();
    fx_engine.set_shared_ball_cache(nullptr);
    Samples latency_ms;
    double bfs_s = 0.0;
    double total_s = 0.0;
    for (const auto& r : results) {
      latency_ms.add(r.stats.total_seconds * 1e3);
      bfs_s += r.stats.bfs_seconds();
      total_s += r.stats.service_seconds();
    }
    add_row("degraded farm, 4 workers", latency_ms, wall_s, bfs_s, total_s,
            fmt_percent(batch.cache_hit_rate()),
            fmt_fixed(static_cast<double>(shared_cache.bytes()) / (1 << 20),
                      1),
            "-", std::to_string(batch.stolen_tasks),
            std::to_string(batch.peak_aggregator_entries), "-");
    serving_notes.push_back(
        "degraded farm (plan: " + plan.summary() + "): outcomes ok/degr/fail " +
        std::to_string(batch.queries - batch.degraded_queries -
                       batch.failed_queries) +
        "/" + std::to_string(batch.degraded_queries) + "/" +
        std::to_string(batch.failed_queries) + ", retries " +
        std::to_string(batch.dispatch_retries) + ", failovers " +
        std::to_string(batch.failovers) + ", deadline misses " +
        std::to_string(batch.deadline_misses) + ", breaker trips " +
        std::to_string(batch.breaker_trips) + ", devices healthy/dead " +
        std::to_string(batch.healthy_devices) + "/" +
        std::to_string(batch.dead_devices));
  }

  std::cout << report.ascii() << '\n';
  std::cout << "serving-layer lookahead/admission detail:\n";
  for (const std::string& note : serving_notes) {
    std::cout << "  " << note << '\n';
  }
  std::cout << '\n'
            << "reading: the cache converts the BFS share of repeated "
               "queries into memory; the pipeline converts idle cores into "
               "throughput at identical scores; the serving stack combines "
               "both and hides the residual BFS behind diffusion; the "
               "bounded rows additionally cap every in-flight query's "
               "score table at c*k entries (the paper's BRAM envelope) "
               "with scores still bit-identical to the serial bounded "
               "engine — four dials on the same memory<->latency trade. The "
               "degraded-farm row keeps serving through injected device "
               "faults: retries and the fixed-point CPU failover trade "
               "latency for availability at identical scores.\n";
  return 0;
}
