// A PPR query server on an edge device — the paper's deployment story
// (Sec. I: real-time responses on memory-constrained devices) run as a
// serving simulation.
//
// A stream of queries with a skewed (popular-seed-heavy) distribution hits
// a MeLoPPR engine twice: cold (every ball re-extracted) and with a
// byte-budgeted LRU ball cache. The report shows tail latency and the
// memory the cache spends to buy it — the serving-time face of the paper's
// memory↔latency trade-off.
#include <iostream>

#include "core/ball_cache.hpp"
#include "core/engine.hpp"
#include "graph/paper_graphs.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

int main() {
  using namespace meloppr;
  Rng rng(77);

  const graph::Graph g =
      graph::make_paper_graph(graph::PaperGraphId::kG3Pubmed, rng);
  std::cout << "serving graph: " << g.summary() << "\n\n";

  core::MelopprConfig cfg;
  cfg.stage_lengths = {3, 3};
  cfg.k = 100;
  cfg.selection = core::Selection::top_ratio(0.03);
  core::Engine engine(g, cfg);

  // Query stream: 70% of traffic goes to 32 popular seeds (a Zipf-ish
  // head), the rest uniform — the access pattern of a real recommender.
  std::vector<graph::NodeId> popular;
  for (int i = 0; i < 32; ++i) {
    popular.push_back(graph::random_seed_node(g, rng));
  }
  const std::size_t query_count = 200;
  std::vector<graph::NodeId> stream;
  for (std::size_t i = 0; i < query_count; ++i) {
    stream.push_back(rng.chance(0.7)
                         ? popular[rng.below(popular.size())]
                         : graph::random_seed_node(g, rng));
  }

  TablePrinter report({"configuration", "p50 (ms)", "p99 (ms)",
                       "mean (ms)", "BFS share", "cache hit rate",
                       "cache MB"});

  auto serve = [&](core::BallCache* cache, const std::string& name) {
    engine.set_ball_cache(cache);
    Samples latency_ms;
    double bfs_s = 0.0;
    double total_s = 0.0;
    for (graph::NodeId seed : stream) {
      Timer t;
      const core::QueryResult r = engine.query(seed);
      latency_ms.add(t.elapsed_ms());
      bfs_s += r.stats.bfs_seconds();
      total_s += r.stats.total_seconds;
    }
    engine.set_ball_cache(nullptr);
    report.add_row(
        {name, fmt_fixed(latency_ms.median(), 2),
         fmt_fixed(latency_ms.percentile(99.0), 2),
         fmt_fixed(latency_ms.mean(), 2), fmt_percent(bfs_s / total_s),
         cache != nullptr ? fmt_percent(cache->hit_rate()) : "-",
         cache != nullptr
             ? fmt_fixed(static_cast<double>(cache->bytes()) / (1 << 20), 1)
             : "-"});
  };

  serve(nullptr, "cold (no cache)");
  core::BallCache small_cache(g, 8u << 20);
  serve(&small_cache, "8 MB ball cache");
  core::BallCache big_cache(g, 64u << 20);
  serve(&big_cache, "64 MB ball cache");

  std::cout << report.ascii() << '\n'
            << "reading: the cache converts the BFS share of repeated "
               "queries into memory — the same memory<->latency dial the "
               "paper turns, applied at serving time.\n";
  return 0;
}
