// Quickstart: the MeLoPPR public API in ~40 lines.
//
//   1. Build (or load) an undirected graph.
//   2. Configure MeLoPPR: α, stage lengths (L = l1 + l2), k, and the
//      latency↔precision knob (the next-stage selection policy).
//   3. Query a seed node; read the ranked top-k and the query statistics.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "ppr/local_ppr.hpp"
#include "util/rng.hpp"

int main() {
  using namespace meloppr;

  // A clustered graph standing in for a product co-purchase network — the
  // locality-rich regime where MeLoPPR's memory savings are largest.
  Rng rng(7);
  const graph::Graph g = graph::community_graph(20000, 1000, 4.0, 1.0, rng);
  std::cout << "graph: " << g.summary() << "\n\n";

  // Paper defaults: L = 6 split as 3+3, k nodes returned; 20% of the
  // stage-1 ball re-diffused in stage 2 (the latency<->precision knob —
  // the paper's benches sweep it from 1% to 30%).
  core::MelopprConfig config;
  config.alpha = 0.85;
  config.stage_lengths = {3, 3};
  config.k = 10;
  config.selection = core::Selection::top_ratio(0.20);

  const core::Engine engine(g, config);
  const graph::NodeId seed = 42;
  const core::QueryResult result = engine.query(seed);

  std::cout << "top-" << config.k << " nodes most relevant to node " << seed
            << ":\n";
  for (const auto& [node, score] : result.top) {
    std::cout << "  node " << node << "  score " << score << '\n';
  }

  const core::QueryStats& s = result.stats;
  std::cout << "\nquery took " << s.total_seconds * 1e3 << " ms ("
            << s.total_balls() << " sub-graph diffusions, peak memory "
            << static_cast<double>(s.peak_bytes) / 1024.0 << " KB, BFS share "
            << s.bfs_fraction() * 100.0 << "%)\n";

  // Compare against the exact single-stage baseline.
  const ppr::LocalPprResult exact =
      ppr::local_ppr(g, seed, {config.alpha, 6, config.k});
  std::cout << "precision vs exact 6-step PPR: "
            << ppr::precision_at_k(exact.top, result.top, config.k) * 100.0
            << "%  (baseline used "
            << static_cast<double>(exact.peak_bytes) / 1024.0
            << " KB — MeLoPPR used "
            << static_cast<double>(s.peak_bytes) / 1024.0 << " KB)\n";
  return 0;
}
